// Command study reproduces the paper's Sec. V large-scale resilience study
// and the Sec. VI comparisons on the NVDLA-small configuration.
//
// Usage:
//
//	study -fig 4  [-samples N] [-inputs N] [-seed S]   # CNN FIT × precision
//	study -fig 5  ...                                  # Transformer & Yolo × tolerance
//	study -fig 6  ...                                  # global control protected
//	study -setup                                       # Table IV experiment setup
//	study -perturbation ...                            # Key Result 5
//	study -speedup [-iters N]                          # Sec. VI speedup comparison
//	study -baseline ...                                # Sec. VI naive-FI underestimate
//	study -protect ...                                 # selective-protection plan
//
// All campaign modes take -workers (parallel injection) and -perlayer
// (estimate Prob_SWmask per layer — the exact Eq. 2 form). The paper's study
// is 46M experiments; -samples scales the per-model count (Wilson 95% CIs
// are reported so the statistical resolution is explicit).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"fidelity/internal/accel"
	"fidelity/internal/baseline"
	"fidelity/internal/campaign"
	"fidelity/internal/core"
	"fidelity/internal/fit"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
	"fidelity/internal/report"
)

func main() {
	fig := flag.Int("fig", 0, "reproduce figure 4, 5, or 6")
	setup := flag.Bool("setup", false, "print the Table IV experiment setup")
	perturbation := flag.Bool("perturbation", false, "Key Result 5: perturbation magnitude vs error probability")
	speedup := flag.Bool("speedup", false, "Sec. VI speedup comparison")
	naive := flag.Bool("baseline", false, "Sec. VI naive-FI comparison")
	samples := flag.Int("samples", 400, "injection experiments per fault model per workload")
	inputs := flag.Int("inputs", 4, "distinct dataset inputs per workload")
	iters := flag.Int("iters", 200, "timing iterations for -speedup")
	seed := flag.Int64("seed", 1, "sampling seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel injection workers")
	perLayer := flag.Bool("perlayer", false, "estimate Prob_SWmask per layer (exact Eq. 2; multiplies experiment count)")
	protect := flag.Bool("protect", false, "selective-protection plan for yolo (Architectural Insights)")
	flag.Parse()

	cfg := accel.NVDLASmall()
	fw, err := core.New(cfg)
	if err != nil {
		fail(err)
	}
	opts := campaign.StudyOptions{
		Samples: *samples, Inputs: *inputs, Seed: *seed,
		Workers: *workers, PerLayer: *perLayer,
	}

	switch {
	case *setup:
		printSetup()
	case *fig == 4:
		err = fig4(fw, opts)
	case *fig == 5:
		err = fig5(fw, opts)
	case *fig == 6:
		err = fig6(fw, opts)
	case *perturbation:
		err = keyResult5(fw, opts)
	case *speedup:
		err = speedupCmp(fw, *iters, *seed)
	case *naive:
		err = naiveCmp(fw, cfg, opts)
	case *protect:
		err = protectPlan(fw, cfg, opts)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "study:", err)
	os.Exit(1)
}

func printSetup() {
	t := report.NewTable("Table IV: fault injection experiment setup",
		"Workload", "Dataset", "Metric", "Precisions")
	t.Add("inception, resnet, mobilenet", "imagenet-like / cifar10-like", "top-1 label match", "FP16, INT16, INT8")
	t.Add("transformer", "iwslt-like", "<10%/20% BLEU difference", "FP16")
	t.Add("yolo", "coco-like", "<10%/20% precision difference", "FP16")
	fmt.Print(t.String())
	fmt.Println("platform: pure-Go nn substrate (modified-TensorFlow analog); " +
		"paper total: 46M experiments, scaled here via -samples")
}

// fig4: Accelerator FIT for the three CNNs across FP16/INT16/INT8.
func fig4(fw *core.Framework, opts campaign.StudyOptions) error {
	var results []*campaign.StudyResult
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		for _, p := range []numerics.Precision{numerics.FP16, numerics.INT16, numerics.INT8} {
			opts.Tolerance = 0.1
			r, err := fw.Analyze(net, p, opts)
			if err != nil {
				return err
			}
			results = append(results, r)
			fmt.Printf("  %s/%s: FIT=%.2f (datapath=%.2f local=%.2f global=%.2f), %d experiments\n",
				r.Workload, r.Precision, r.FIT.Total,
				r.FIT.ByClass[accel.Datapath], r.FIT.ByClass[accel.LocalControl],
				r.FIT.ByClass[accel.GlobalControl], r.Experiments)
		}
	}
	fmt.Println()
	fmt.Print(core.FITChart("Fig 4: Accelerator FIT rate (Inception/ResNet/MobileNet)", results, false).String())
	return nil
}

// fig5: Transformer and Yolo under both metric tolerances.
func fig5(fw *core.Framework, opts campaign.StudyOptions) error {
	var results []*campaign.StudyResult
	for _, net := range []string{"transformer", "yolo"} {
		for _, tol := range []float64{0.1, 0.2} {
			opts.Tolerance = tol
			r, err := fw.Analyze(net, numerics.FP16, opts)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
	}
	fmt.Print(core.FITChart("Fig 5: Accelerator FIT rate (Transformer & Yolo, 10%/20% tolerance)", results, false).String())
	return nil
}

// fig6: CNN FIT with all global control FFs protected.
func fig6(fw *core.Framework, opts campaign.StudyOptions) error {
	var results []*campaign.StudyResult
	opts.Tolerance = 0.1
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		r, err := fw.Analyze(net, numerics.FP16, opts)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	fmt.Print(core.FITChart("Fig 6: FIT with global control FFs protected", results, true).String())
	fmt.Println("note: datapath + local control alone still exceed the 0.2 ASIL-D FF budget (Key Result 2)")
	return nil
}

// keyResult5: error probability by perturbation magnitude for single-faulty-
// neuron experiments on the FP16 CNNs.
func keyResult5(fw *core.Framework, opts campaign.StudyOptions) error {
	var small, large campaign.Proportion
	opts.Tolerance = 0.1
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		r, err := fw.Analyze(net, numerics.FP16, opts)
		if err != nil {
			return err
		}
		small.Successes += r.Perturb.SmallFail.Successes
		small.Trials += r.Perturb.SmallFail.Trials
		large.Successes += r.Perturb.LargeFail.Successes
		large.Trials += r.Perturb.LargeFail.Trials
	}
	t := report.NewTable("Key Result 5: single-faulty-neuron experiments (FP16 CNNs)",
		"Perturbation", "P(application output error)", "n")
	t.Add("abs(delta) <= 100", fmt.Sprintf("%.3f", small.Mean()), fmt.Sprintf("%d", small.Trials))
	t.Add("abs(delta) > 100", fmt.Sprintf("%.3f", large.Mean()), fmt.Sprintf("%d", large.Trials))
	fmt.Print(t.String())
	fmt.Println("paper: <4% for small perturbations, >45% for large ones")
	return nil
}

func speedupCmp(fw *core.Framework, iters int, seed int64) error {
	reports, err := fw.Speedup(iters, seed)
	if err != nil {
		return err
	}
	t := report.NewTable("Sec. VI: per-injection cost comparison",
		"Workload", "cycles", "software (s)", "cycle-sim (s)", "RTL est. (s)", "vs RTL", "vs mixed")
	for _, r := range reports {
		t.Addf("%s|%d|%.2e|%.2e|%.2e|%.0fx|%.0fx",
			r.Workload, r.Cycles, r.SoftwareSec, r.MixedSec, r.RTLSec, r.VsRTL, r.VsMixed)
	}
	fmt.Print(t.String())
	fmt.Println("paper: >10000x vs RTL, 40x-2200x vs mixed-mode")
	return nil
}

func naiveCmp(fw *core.Framework, cfg *accel.Config, opts campaign.StudyOptions) error {
	t := report.NewTable("Sec. VI: naive software FI vs FIdelity",
		"Workload", "naive FIT", "FIdelity FIT", "underestimate")
	for _, net := range []string{"inception", "resnet", "mobilenet", "yolo", "transformer", "rnn"} {
		w, err := model.Build(net, numerics.FP16, 42)
		if err != nil {
			return err
		}
		nb, err := baseline.Run(cfg, w, baseline.Options{
			Samples: opts.Samples, Inputs: opts.Inputs, Tolerance: 0.1, Seed: opts.Seed,
		})
		if err != nil {
			return err
		}
		opts.Tolerance = 0.1
		st, err := campaign.Study(cfg, w, opts)
		if err != nil {
			return err
		}
		factor := fmt.Sprintf("%.1fx", baseline.Underestimate(st.FIT.Total, nb))
		if nb.FIT == 0 {
			// Zero observed naive failures: report the Wilson-bounded floor.
			factor = fmt.Sprintf(">%.0fx", baseline.UnderestimateBound(cfg, st.FIT.Total, nb, 0))
		}
		t.Addf("%s|%.3f|%.3f|%s", net, nb.FIT, st.FIT.Total, factor)
	}
	fmt.Print(t.String())
	fmt.Println("paper: the naive technique underestimates by up to 25x")
	return nil
}

// protectPlan derives the minimal selective-protection scheme for yolo —
// the paper's Architectural Insights example.
func protectPlan(fw *core.Framework, cfg *accel.Config, opts campaign.StudyOptions) error {
	opts.Tolerance = 0.1
	res, err := fw.Analyze("yolo", numerics.FP16, opts)
	if err != nil {
		return err
	}
	plan, err := fit.PlanProtection(cfg, res.FIT, fit.FFBudget())
	if err != nil {
		return err
	}
	fmt.Printf("yolo FP16 @10%%: unprotected FIT = %.2f, budget = %.2f\n", res.FIT.Total, fit.FFBudget())
	fmt.Println(plan.String())
	return nil
}

// Command study reproduces the paper's Sec. V large-scale resilience study
// and the Sec. VI comparisons on the NVDLA-small configuration.
//
// Usage:
//
//	study -fig 4  [-samples N] [-inputs N] [-seed S]   # CNN FIT × precision
//	study -fig 5  ...                                  # Transformer & Yolo × tolerance
//	study -fig 6  ...                                  # global control protected
//	study -setup                                       # Table IV experiment setup
//	study -perturbation ...                            # Key Result 5
//	study -speedup [-iters N]                          # Sec. VI speedup comparison
//	study -baseline ...                                # Sec. VI naive-FI underestimate
//	study -protect ...                                 # selective-protection plan
//
// All campaign modes take -workers (parallel injection) and -perlayer
// (estimate Prob_SWmask per layer — the exact Eq. 2 form). The paper's study
// is 46M experiments; -samples scales the per-model count (Wilson 95% CIs
// are reported so the statistical resolution is explicit). -target-ci W
// replaces the fixed count with adaptive stratified sampling: planner rounds
// stop each stratum once its 95% Wilson CI half-width reaches W, typically
// at a small fraction of the fixed-count experiment budget.
//
// Campaigns are long-lived jobs, not function calls. SIGINT (Ctrl-C) stops
// the run at an experiment boundary and saves a resumable checkpoint to
// -checkpoint; rerunning with -resume <file> continues it to a result
// identical to an uninterrupted run. -progress <interval> emits JSONL
// telemetry snapshots to stderr (attributed source "local"), and -manifest
// writes a machine-readable run summary next to the report output.
//
// To fan a campaign out over machines instead of local -workers, see
// cmd/fidelityd: the same engine behind a coordinator/worker fabric, with
// byte-identical results for the same -seed and -shards.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/baseline"
	"fidelity/internal/campaign"
	"fidelity/internal/core"
	"fidelity/internal/fit"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
	"fidelity/internal/report"
	"fidelity/internal/telemetry"
)

func main() {
	fig := flag.Int("fig", 0, "reproduce figure 4, 5, or 6")
	setup := flag.Bool("setup", false, "print the Table IV experiment setup")
	perturbation := flag.Bool("perturbation", false, "Key Result 5: perturbation magnitude vs error probability")
	speedup := flag.Bool("speedup", false, "Sec. VI speedup comparison")
	naive := flag.Bool("baseline", false, "Sec. VI naive-FI comparison")
	samples := flag.Int("samples", 400, "injection experiments per fault model per workload")
	targetCI := flag.Float64("target-ci", 0, "adaptive stratified sampling: run planner rounds until every (layer, fault model) stratum's 95% Wilson CI half-width is at most this target (mutually exclusive with -samples; in (0, 0.5])")
	inputs := flag.Int("inputs", 4, "distinct dataset inputs per workload")
	iters := flag.Int("iters", 200, "timing iterations for -speedup")
	seed := flag.Int64("seed", 1, "sampling seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel injection workers (affects speed only, never results)")
	shards := flag.Int("shards", 0, "deterministic sampling shards (0 = default; part of the campaign identity like -seed)")
	perLayer := flag.Bool("perlayer", false, "estimate Prob_SWmask per layer (exact Eq. 2; multiplies experiment count)")
	protect := flag.Bool("protect", false, "selective-protection plan for yolo (Architectural Insights)")
	resume := flag.String("resume", "", "resume an interrupted campaign from this checkpoint file")
	checkpoint := flag.String("checkpoint", "study.checkpoint.json", "checkpoint file for interrupted campaigns (empty disables)")
	ckptInterval := flag.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint save interval (0 = save only on interrupt)")
	progress := flag.Duration("progress", 0, "emit JSONL progress snapshots to stderr at this interval (0 = off)")
	manifest := flag.String("manifest", "study.manifest.json", "write a machine-readable run manifest to this file (empty disables)")
	expTimeout := flag.Duration("experiment-timeout", 0, "per-experiment watchdog deadline; hung experiments are quarantined (0 = off)")
	failBudget := flag.Int("failure-budget", 0, "max quarantined experiments per shard before the study degrades to a partial result (0 = default, negative = unlimited)")
	ioRetries := flag.Int("io-retries", 0, "retries for transient checkpoint/manifest write failures (0 = default)")
	ioBackoff := flag.Duration("io-backoff", 0, "initial backoff between I/O retries, doubling per attempt (0 = default)")
	noReplay := flag.Bool("no-replay", false, "disable the incremental golden-replay engine and run every experiment as a full forward pass (bit-identical results, slower)")
	noRegion := flag.Bool("no-region-sweep", false, "recompute whole layers during replay instead of only the dirty output region (bit-identical results, slower)")
	batch := flag.Int("batch", campaign.DefaultExperimentBatch, "experiment batch window for site-grouped execution (1 = unbatched; bit-identical results for every value)")
	flag.Parse()
	if *targetCI != 0 {
		samplesSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "samples" {
				samplesSet = true
			}
		})
		if samplesSet {
			usageError("-samples and -target-ci are mutually exclusive (the adaptive planner sizes each stratum itself)")
		}
		if *targetCI < 0 || *targetCI > 0.5 {
			usageError("-target-ci must be in (0, 0.5] (got %g)", *targetCI)
		}
		*samples = 0
	} else if *samples <= 0 {
		usageError("-samples must be positive (got %d)", *samples)
	}
	if *inputs <= 0 {
		usageError("-inputs must be positive (got %d)", *inputs)
	}
	if *shards < 0 {
		usageError("-shards must be non-negative (got %d; 0 selects the default)", *shards)
	}
	if *iters <= 0 {
		usageError("-iters must be positive (got %d)", *iters)
	}
	if *workers < 0 {
		usageError("-workers must be non-negative (got %d; 0 selects the default)", *workers)
	}
	if *batch <= 0 {
		usageError("-batch must be positive (got %d; 1 disables batching)", *batch)
	}

	// SIGINT/SIGTERM cancel the campaign context; workers stop at an
	// experiment boundary and the engine saves a checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := accel.NVDLASmall()
	fw, err := core.New(cfg)
	if err != nil {
		fail(err)
	}
	r := &runner{
		ctx: ctx, fw: fw, cfg: cfg,
		tel:   telemetry.New(),
		start: time.Now(),
		opts: campaign.StudyOptions{
			Samples: *samples, TargetCI: *targetCI, Inputs: *inputs, Seed: *seed,
			Workers: *workers, Shards: *shards, PerLayer: *perLayer,
			CheckpointPath:     *checkpoint,
			CheckpointInterval: *ckptInterval,
			ExperimentTimeout:  *expTimeout,
			FailureBudget:      *failBudget,
			IORetries:          *ioRetries,
			IOBackoff:          *ioBackoff,
			DisableReplay:      *noReplay,
			DisableRegionSweep: *noRegion,
			ExperimentBatch:    *batch,
		},
	}
	// Progress lines from an in-process campaign are attributed "local";
	// distributed runs (fidelityd) attribute per worker ID instead.
	r.tel.SetSource("local")
	r.opts.Telemetry = r.tel
	if *resume != "" {
		cp, err := campaign.LoadCheckpoint(*resume)
		if err != nil {
			fail(err)
		}
		r.opts.Resume = cp
		if r.opts.CheckpointPath == "" {
			r.opts.CheckpointPath = *resume
		}
		fmt.Fprintf(os.Stderr, "study: resuming %s/%s@%g from %s (%d experiments done, %d quarantined)\n",
			cp.Workload, cp.Precision, cp.Tolerance, *resume, cp.Experiments, cp.Quarantined)
	}
	stopProgress := r.emitProgress(*progress)

	switch {
	case *setup:
		r.mode = "setup"
		printSetup()
	case *fig == 4:
		r.mode = "fig4"
		err = fig4(r)
	case *fig == 5:
		r.mode = "fig5"
		err = fig5(r)
	case *fig == 6:
		r.mode = "fig6"
		err = fig6(r)
	case *perturbation:
		r.mode = "perturbation"
		err = keyResult5(r)
	case *speedup:
		r.mode = "speedup"
		err = speedupCmp(ctx, fw, *iters, *seed)
	case *naive:
		r.mode = "baseline"
		err = naiveCmp(r)
	case *protect:
		r.mode = "protect"
		err = protectPlan(r)
	default:
		flag.Usage()
		os.Exit(2)
	}
	stopProgress()

	var intr *campaign.Interrupted
	if errors.As(err, &intr) {
		r.writeManifest(*manifest, intr)
		if intr.Path != "" {
			fmt.Fprintf(os.Stderr, "study: interrupted after %d experiments; checkpoint saved to %s\n",
				r.tel.Experiments(), intr.Path)
			fmt.Fprintf(os.Stderr, "study: rerun with -resume %s to continue\n", intr.Path)
		} else {
			fmt.Fprintln(os.Stderr, "study: interrupted (no -checkpoint configured; progress discarded)")
		}
		os.Exit(130)
	}
	if err != nil {
		fail(err)
	}
	partial := false
	for _, res := range r.results {
		if res.Partial {
			partial = true
		}
	}
	if partial {
		// Degraded run: keep the checkpoint (it completes the study once the
		// failure is fixed) and exit with a distinct code so schedulers can
		// tell a flagged partial result from a clean one.
		r.writeManifest(*manifest, nil)
		fmt.Fprintf(os.Stderr, "study: partial result: at least one shard exhausted its failure budget"+
			" (%d experiments quarantined); checkpoint kept for resume\n", quarantined(r.results))
		os.Exit(3)
	}
	// The campaign completed: a leftover (periodic or resumed-from)
	// checkpoint would only repeat the finished run, so clean it up.
	if p := r.opts.CheckpointPath; p != "" {
		if _, statErr := os.Stat(p); statErr == nil {
			os.Remove(p)
		}
	}
	r.writeManifest(*manifest, nil)
}

// quarantined totals the supervisor-removed experiments across study cells.
func quarantined(results []*campaign.StudyResult) int {
	n := 0
	for _, res := range results {
		n += len(res.Quarantined)
	}
	return n
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "study:", err)
	os.Exit(1)
}

// usageError rejects nonsensical flag values before any campaign state is
// touched: print the complaint and the usage text, exit 2 (the same code as
// an unknown mode).
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "study: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// runner threads the shared campaign machinery — context, options,
// telemetry, and the result log that feeds the run manifest — through the
// study modes.
type runner struct {
	ctx     context.Context
	fw      *core.Framework
	cfg     *accel.Config
	opts    campaign.StudyOptions
	tel     *telemetry.Collector
	start   time.Time
	mode    string
	results []*campaign.StudyResult
}

// analyze runs one (workload, precision, tolerance) study cell and logs the
// result for the manifest.
func (r *runner) analyze(net string, prec numerics.Precision, tol float64) (*campaign.StudyResult, error) {
	opts := r.opts
	opts.Tolerance = tol
	res, err := r.fw.Analyze(r.ctx, net, prec, opts)
	if err != nil {
		return nil, err
	}
	r.results = append(r.results, res)
	return res, nil
}

// emitProgress starts the periodic JSONL telemetry emitter (stderr, one
// snapshot per line) and returns its stop function.
func (r *runner) emitProgress(interval time.Duration) func() {
	if interval <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		enc := json.NewEncoder(os.Stderr)
		var prev telemetry.Snapshot
		for {
			select {
			case <-t.C:
				snap := r.tel.Snapshot()
				line := progressLine{Snapshot: snap, IntervalPerSec: snap.RateSince(prev)}
				_ = enc.Encode(line)
				prev = snap
			case <-stop:
				return
			}
		}
	}()
	return func() { close(stop); <-done }
}

// progressLine is one JSONL progress record: the cumulative telemetry
// snapshot plus the experiments/sec over the last emission window.
type progressLine struct {
	telemetry.Snapshot
	IntervalPerSec float64 `json:"interval_per_sec"`
}

// manifestResult summarizes one study cell in the run manifest.
type manifestResult struct {
	Workload     string  `json:"workload"`
	Precision    string  `json:"precision"`
	Tolerance    float64 `json:"tolerance"`
	FIT          float64 `json:"fit"`
	FITProtected float64 `json:"fit_protected"`
	Experiments  int     `json:"experiments"`
	// Quarantined counts experiments the supervisor removed from this cell;
	// Partial marks a cell degraded by an exhausted shard failure budget.
	Quarantined int  `json:"quarantined,omitempty"`
	Partial     bool `json:"partial,omitempty"`
}

// runManifest is the machine-readable summary written next to the report
// output after every run.
type runManifest struct {
	Command     string             `json:"command"`
	Args        []string           `json:"args"`
	Mode        string             `json:"mode"`
	Start       time.Time          `json:"start"`
	End         time.Time          `json:"end"`
	Seed        int64              `json:"seed"`
	Samples     int                `json:"samples"`
	TargetCI    float64            `json:"target_ci,omitempty"`
	Inputs      int                `json:"inputs"`
	Workers     int                `json:"workers"`
	Shards      int                `json:"shards"`
	PerLayer    bool               `json:"per_layer,omitempty"`
	Interrupted bool               `json:"interrupted,omitempty"`
	Partial     bool               `json:"partial,omitempty"`
	Quarantined int                `json:"quarantined,omitempty"`
	Checkpoint  string             `json:"checkpoint,omitempty"`
	Telemetry   telemetry.Snapshot `json:"telemetry"`
	Results     []manifestResult   `json:"results,omitempty"`
}

func (r *runner) writeManifest(path string, intr *campaign.Interrupted) {
	if path == "" {
		return
	}
	m := runManifest{
		Command: "study", Args: os.Args[1:], Mode: r.mode,
		Start: r.start, End: time.Now(),
		Seed: r.opts.Seed, Samples: r.opts.Samples, TargetCI: r.opts.TargetCI, Inputs: r.opts.Inputs,
		Workers: r.opts.Workers, Shards: r.opts.Shards, PerLayer: r.opts.PerLayer,
		Telemetry: r.tel.Snapshot(),
	}
	if intr != nil {
		m.Interrupted = true
		m.Checkpoint = intr.Path
	}
	for _, res := range r.results {
		m.Results = append(m.Results, manifestResult{
			Workload: res.Workload, Precision: res.Precision, Tolerance: res.Tolerance,
			FIT: res.FIT.Total, FITProtected: res.FITProtected.Total,
			Experiments: res.Experiments,
			Quarantined: len(res.Quarantined), Partial: res.Partial,
		})
		m.Quarantined += len(res.Quarantined)
		if res.Partial {
			m.Partial = true
			m.Checkpoint = r.opts.CheckpointPath
		}
	}
	retries, backoff := r.opts.IORetries, r.opts.IOBackoff
	if retries <= 0 {
		retries = campaign.DefaultIORetries
	}
	if backoff <= 0 {
		backoff = campaign.DefaultIOBackoff
	}
	err := campaign.RetryIO(r.tel, retries, backoff, func() error {
		return campaign.AtomicWriteJSON(path, m)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "study: manifest:", err)
	}
}

func printSetup() {
	t := report.NewTable("Table IV: fault injection experiment setup",
		"Workload", "Dataset", "Metric", "Precisions")
	t.Add("inception, resnet, mobilenet", "imagenet-like / cifar10-like", "top-1 label match", "FP16, INT16, INT8")
	t.Add("transformer", "iwslt-like", "<10%/20% BLEU difference", "FP16")
	t.Add("yolo", "coco-like", "<10%/20% precision difference", "FP16")
	fmt.Print(t.String())
	fmt.Println("platform: pure-Go nn substrate (modified-TensorFlow analog); " +
		"paper total: 46M experiments, scaled here via -samples")
}

// fig4: Accelerator FIT for the three CNNs across FP16/INT16/INT8.
func fig4(r *runner) error {
	var results []*campaign.StudyResult
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		for _, p := range []numerics.Precision{numerics.FP16, numerics.INT16, numerics.INT8} {
			res, err := r.analyze(net, p, 0.1)
			if err != nil {
				return err
			}
			results = append(results, res)
			fmt.Printf("  %s/%s: FIT=%.2f (datapath=%.2f local=%.2f global=%.2f), %d experiments\n",
				res.Workload, res.Precision, res.FIT.Total,
				res.FIT.ByClass[accel.Datapath], res.FIT.ByClass[accel.LocalControl],
				res.FIT.ByClass[accel.GlobalControl], res.Experiments)
		}
	}
	fmt.Println()
	fmt.Print(core.FITChart("Fig 4: Accelerator FIT rate (Inception/ResNet/MobileNet)", results, false).String())
	return nil
}

// fig5: Transformer and Yolo under both metric tolerances.
func fig5(r *runner) error {
	var results []*campaign.StudyResult
	for _, net := range []string{"transformer", "yolo"} {
		for _, tol := range []float64{0.1, 0.2} {
			res, err := r.analyze(net, numerics.FP16, tol)
			if err != nil {
				return err
			}
			results = append(results, res)
		}
	}
	fmt.Print(core.FITChart("Fig 5: Accelerator FIT rate (Transformer & Yolo, 10%/20% tolerance)", results, false).String())
	return nil
}

// fig6: CNN FIT with all global control FFs protected.
func fig6(r *runner) error {
	var results []*campaign.StudyResult
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		res, err := r.analyze(net, numerics.FP16, 0.1)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	fmt.Print(core.FITChart("Fig 6: FIT with global control FFs protected", results, true).String())
	fmt.Println("note: datapath + local control alone still exceed the 0.2 ASIL-D FF budget (Key Result 2)")
	return nil
}

// keyResult5: error probability by perturbation magnitude for single-faulty-
// neuron experiments on the FP16 CNNs.
func keyResult5(r *runner) error {
	var small, large campaign.Proportion
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		res, err := r.analyze(net, numerics.FP16, 0.1)
		if err != nil {
			return err
		}
		small.Successes += res.Perturb.SmallFail.Successes
		small.Trials += res.Perturb.SmallFail.Trials
		large.Successes += res.Perturb.LargeFail.Successes
		large.Trials += res.Perturb.LargeFail.Trials
	}
	t := report.NewTable("Key Result 5: single-faulty-neuron experiments (FP16 CNNs)",
		"Perturbation", "P(application output error)", "n")
	t.Add("abs(delta) <= 100", fmt.Sprintf("%.3f", small.Mean()), fmt.Sprintf("%d", small.Trials))
	t.Add("abs(delta) > 100", fmt.Sprintf("%.3f", large.Mean()), fmt.Sprintf("%d", large.Trials))
	fmt.Print(t.String())
	fmt.Println("paper: <4% for small perturbations, >45% for large ones")
	return nil
}

func speedupCmp(ctx context.Context, fw *core.Framework, iters int, seed int64) error {
	reports, err := fw.Speedup(ctx, iters, seed)
	if err != nil {
		return err
	}
	t := report.NewTable("Sec. VI: per-injection cost comparison",
		"Workload", "cycles", "software (s)", "cycle-sim (s)", "RTL est. (s)", "vs RTL", "vs mixed")
	for _, r := range reports {
		t.Addf("%s|%d|%.2e|%.2e|%.2e|%.0fx|%.0fx",
			r.Workload, r.Cycles, r.SoftwareSec, r.MixedSec, r.RTLSec, r.VsRTL, r.VsMixed)
	}
	fmt.Print(t.String())
	fmt.Println("paper: >10000x vs RTL, 40x-2200x vs mixed-mode")
	return nil
}

func naiveCmp(r *runner) error {
	t := report.NewTable("Sec. VI: naive software FI vs FIdelity",
		"Workload", "naive FIT", "FIdelity FIT", "underestimate")
	for _, net := range []string{"inception", "resnet", "mobilenet", "yolo", "transformer", "rnn"} {
		w, err := model.Build(net, numerics.FP16, 42)
		if err != nil {
			return err
		}
		nb, err := baseline.Run(r.cfg, w, baseline.Options{
			Samples: r.opts.Samples, Inputs: r.opts.Inputs, Tolerance: 0.1, Seed: r.opts.Seed,
		})
		if err != nil {
			return err
		}
		opts := r.opts
		opts.Tolerance = 0.1
		st, err := campaign.Study(r.ctx, r.cfg, w, opts)
		if err != nil {
			return err
		}
		r.results = append(r.results, st)
		factor := fmt.Sprintf("%.1fx", baseline.Underestimate(st.FIT.Total, nb))
		if nb.FIT == 0 {
			// Zero observed naive failures: report the Wilson-bounded floor.
			factor = fmt.Sprintf(">%.0fx", baseline.UnderestimateBound(r.cfg, st.FIT.Total, nb, 0))
		}
		t.Addf("%s|%.3f|%.3f|%s", net, nb.FIT, st.FIT.Total, factor)
	}
	fmt.Print(t.String())
	fmt.Println("paper: the naive technique underestimates by up to 25x")
	return nil
}

// protectPlan derives the minimal selective-protection scheme for yolo —
// the paper's Architectural Insights example.
func protectPlan(r *runner) error {
	res, err := r.analyze("yolo", numerics.FP16, 0.1)
	if err != nil {
		return err
	}
	plan, err := fit.PlanProtection(r.cfg, res.FIT, fit.FFBudget())
	if err != nil {
		return err
	}
	fmt.Printf("yolo FP16 @10%%: unprotected FIT = %.2f, budget = %.2f\n", res.FIT.Total, fit.FFBudget())
	fmt.Println(plan.String())
	return nil
}

package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary impersonate the CLI: when re-exec'd with
// the marker env var set, it runs main() instead of the test suite, so CLI
// tests exercise real flag parsing and exit codes without a separate build.
func TestMain(m *testing.M) {
	if os.Getenv("STUDY_CLI_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "STUDY_CLI_TEST=1")
	// Run in a scratch dir so the default -manifest artifact lands there,
	// not in the package directory.
	cmd.Dir = t.TempDir()
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return buf.String(), code
}

func TestBatchFlagRejectsNonPositive(t *testing.T) {
	for _, bad := range []string{"0", "-3"} {
		out, code := runCLI(t, "-batch", bad, "-setup")
		if code != 2 {
			t.Errorf("-batch %s: exit %d, want usage exit 2\n%s", bad, code, out)
		}
		if !strings.Contains(out, "-batch must be positive") {
			t.Errorf("-batch %s: missing validation message in output:\n%s", bad, out)
		}
	}
}

func TestBatchFlagAcceptsPositive(t *testing.T) {
	// -setup only prints a static table, so a valid invocation exits 0
	// without running a campaign.
	out, code := runCLI(t, "-batch", "1", "-setup")
	if code != 0 {
		t.Fatalf("-batch 1 -setup: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "Table IV") {
		t.Fatalf("-setup output missing Table IV:\n%s", out)
	}
}

func TestExistingFlagValidationStillExitsTwo(t *testing.T) {
	out, code := runCLI(t, "-samples", "0", "-setup")
	if code != 2 || !strings.Contains(out, "-samples must be positive") {
		t.Fatalf("-samples 0: exit %d, output:\n%s", code, out)
	}
}

func TestTargetCIExcludesSamples(t *testing.T) {
	out, code := runCLI(t, "-target-ci", "0.05", "-samples", "100", "-setup")
	if code != 2 || !strings.Contains(out, "mutually exclusive") {
		t.Fatalf("-target-ci with -samples: exit %d, output:\n%s", code, out)
	}
}

func TestTargetCIRangeValidated(t *testing.T) {
	for _, bad := range []string{"0.6", "-0.1"} {
		out, code := runCLI(t, "-target-ci", bad, "-setup")
		if code != 2 {
			t.Errorf("-target-ci %s: exit %d, want usage exit 2\n%s", bad, code, out)
		}
		if !strings.Contains(out, "-target-ci must be in (0, 0.5]") {
			t.Errorf("-target-ci %s: missing validation message:\n%s", bad, out)
		}
	}
}

func TestTargetCIAccepted(t *testing.T) {
	// A valid -target-ci without -samples parses cleanly; -setup exits 0
	// before any campaign runs.
	out, code := runCLI(t, "-target-ci", "0.05", "-setup")
	if code != 0 || !strings.Contains(out, "Table IV") {
		t.Fatalf("-target-ci 0.05 -setup: exit %d, output:\n%s", code, out)
	}
}

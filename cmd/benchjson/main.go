// Command benchjson converts `go test -bench` output on stdin into a
// benchstat-compatible JSON artifact: per-benchmark ns/op and allocs/op, plus
// paired optimized-vs-baseline speedups per workload and their geomean. Two
// benchmark families pair up (both may appear in one stream):
//
//	BenchmarkInjectionReplay/<workload>/{replay,full}      -> BENCH_inject.json
//	BenchmarkCampaign/<workload>/{optimized,baseline}      -> BENCH_campaign.json
//	BenchmarkAdaptive/<workload>/{adaptive,fixed}          -> BENCH_adaptive.json
//	BenchmarkHarden/<workload>/{hardened,baseline}         -> BENCH_harden.json
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkInjectionReplay$' -benchmem . | benchjson -o BENCH_inject.json
//	go test -run '^$' -bench '^BenchmarkCampaign$' . | benchjson -o BENCH_campaign.json
//
// The companion command cmd/benchjson/benchgate compares two such artifacts
// and fails when the geomean regresses, enforcing the benchmark trajectory
// in CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one measured `go test -bench` line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BPerOp     int64   `json:"b_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// Speedup is baseline time over optimized time for one paired workload. For
// BenchmarkInjectionReplay the optimized mode is /replay and the baseline is
// /full; for BenchmarkCampaign they are /optimized and /baseline.
type Speedup struct {
	Workload    string  `json:"workload"`
	OptimizedNs float64 `json:"optimized_ns_per_op"`
	BaselineNs  float64 `json:"baseline_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

// Report is the BENCH_inject.json / BENCH_campaign.json schema.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups covers workloads that measured both modes of a paired family.
	Speedups []Speedup `json:"speedups,omitempty"`
	// GeomeanSpeedup is the geometric mean over the paired workloads
	// (masked-at-layer is a fast-path microbenchmark and reported
	// separately, not averaged in).
	GeomeanSpeedup float64 `json:"geomean_speedup,omitempty"`
	// MaskedSpeedup is the masked-at-layer fast-path speedup.
	MaskedSpeedup float64 `json:"masked_at_layer_speedup,omitempty"`
}

// pairSpecs lists the benchmark families whose sub-benchmarks pair into
// speedups: speedup = slow mode ns/op over fast mode ns/op.
var pairSpecs = []struct {
	prefix     string
	fast, slow string
}{
	{"BenchmarkInjectionReplay/", "replay", "full"},
	{"BenchmarkCampaign/", "optimized", "baseline"},
	// BenchmarkAdaptive reports experiments-per-campaign as its ns/op value,
	// so this pair's "speedup" is the fixed/adaptive experiment ratio at
	// equal Wilson-CI resolution.
	{"BenchmarkAdaptive/", "adaptive", "fixed"},
	// BenchmarkHarden reports the global-control-protected micro-FIT as its
	// ns/op value, so this pair's "speedup" is the baseline/hardened FIT
	// ratio — the reduction range-restriction clamps buy.
	{"BenchmarkHarden/", "hardened", "baseline"},
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := parse(bufio.NewScanner(os.Stdin))

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s", len(rep.Benchmarks), *out)
	if rep.GeomeanSpeedup > 0 {
		fmt.Fprintf(os.Stderr, " (geomean speedup %.2fx", rep.GeomeanSpeedup)
		if rep.MaskedSpeedup > 0 {
			fmt.Fprintf(os.Stderr, ", masked-at-layer %.2fx", rep.MaskedSpeedup)
		}
		fmt.Fprint(os.Stderr, ")")
	}
	fmt.Fprintln(os.Stderr)
}

func parse(sc *bufio.Scanner) Report {
	var rep Report
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	rep.Speedups, rep.GeomeanSpeedup, rep.MaskedSpeedup = speedups(rep.Benchmarks)
	return rep
}

// speedups pairs the fast/slow sub-benchmarks of every family in pairSpecs.
// Sub-benchmark names carry a -<GOMAXPROCS> suffix that must be stripped.
func speedups(benchmarks []Benchmark) ([]Speedup, float64, float64) {
	type pair struct{ fast, slow float64 }
	pairs := map[string]*pair{}
	var order []string
	for _, b := range benchmarks {
		for _, spec := range pairSpecs {
			rest, ok := strings.CutPrefix(b.Name, spec.prefix)
			if !ok {
				continue
			}
			if i := strings.LastIndex(rest, "-"); i > strings.LastIndex(rest, "/") {
				rest = rest[:i] // trim the -<GOMAXPROCS> suffix
			}
			workload, mode, ok := strings.Cut(rest, "/")
			if !ok {
				continue
			}
			p := pairs[workload]
			if p == nil {
				p = &pair{}
				pairs[workload] = p
				order = append(order, workload)
			}
			switch mode {
			case spec.fast:
				p.fast = b.NsPerOp
			case spec.slow:
				p.slow = b.NsPerOp
			}
		}
	}
	var out []Speedup
	var masked float64
	logSum, n := 0.0, 0
	for _, w := range order {
		p := pairs[w]
		if p.fast <= 0 || p.slow <= 0 {
			continue
		}
		s := Speedup{Workload: w, OptimizedNs: p.fast, BaselineNs: p.slow, Speedup: p.slow / p.fast}
		out = append(out, s)
		if w == "masked-at-layer" {
			masked = s.Speedup
			continue
		}
		logSum += math.Log(s.Speedup)
		n++
	}
	var geo float64
	if n > 0 {
		geo = math.Exp(logSum / float64(n))
	}
	return out, geo, masked
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// Command benchjson converts `go test -bench` output on stdin into a
// benchstat-compatible JSON artifact (BENCH_inject.json in CI): per-benchmark
// ns/op and allocs/op, plus full-forward-vs-replay speedups per workload and
// their geomean across the CNN zoo.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkInjectionReplay$' -benchmem . | benchjson -o BENCH_inject.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one measured `go test -bench` line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BPerOp     int64   `json:"b_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// Speedup is full-forward time over replay time for one workload.
type Speedup struct {
	Workload string  `json:"workload"`
	ReplayNs float64 `json:"replay_ns_per_op"`
	FullNs   float64 `json:"full_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// Report is the BENCH_inject.json schema.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups covers BenchmarkInjectionReplay workloads that measured both
	// a /replay and a /full variant.
	Speedups []Speedup `json:"speedups,omitempty"`
	// GeomeanSpeedup is the geometric mean over the CNN-zoo workloads
	// (masked-at-layer is a fast-path microbenchmark and reported
	// separately, not averaged in).
	GeomeanSpeedup float64 `json:"geomean_speedup,omitempty"`
	// MaskedSpeedup is the masked-at-layer fast-path speedup.
	MaskedSpeedup float64 `json:"masked_at_layer_speedup,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := parse(bufio.NewScanner(os.Stdin))

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s", len(rep.Benchmarks), *out)
	if rep.GeomeanSpeedup > 0 {
		fmt.Fprintf(os.Stderr, " (geomean replay speedup %.2fx", rep.GeomeanSpeedup)
		if rep.MaskedSpeedup > 0 {
			fmt.Fprintf(os.Stderr, ", masked-at-layer %.2fx", rep.MaskedSpeedup)
		}
		fmt.Fprint(os.Stderr, ")")
	}
	fmt.Fprintln(os.Stderr)
}

func parse(sc *bufio.Scanner) Report {
	var rep Report
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	rep.Speedups, rep.GeomeanSpeedup, rep.MaskedSpeedup = speedups(rep.Benchmarks)
	return rep
}

// speedups pairs BenchmarkInjectionReplay/<workload>/{replay,full} rows.
// Sub-benchmark names carry a -<GOMAXPROCS> suffix that must be stripped.
func speedups(benchmarks []Benchmark) ([]Speedup, float64, float64) {
	type pair struct{ replay, full float64 }
	pairs := map[string]*pair{}
	var order []string
	for _, b := range benchmarks {
		rest, ok := strings.CutPrefix(b.Name, "BenchmarkInjectionReplay/")
		if !ok {
			continue
		}
		if i := strings.LastIndex(rest, "-"); i > strings.LastIndex(rest, "/") {
			rest = rest[:i] // trim the -<GOMAXPROCS> suffix
		}
		workload, mode, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		p := pairs[workload]
		if p == nil {
			p = &pair{}
			pairs[workload] = p
			order = append(order, workload)
		}
		switch mode {
		case "replay":
			p.replay = b.NsPerOp
		case "full":
			p.full = b.NsPerOp
		}
	}
	var out []Speedup
	var masked float64
	logSum, n := 0.0, 0
	for _, w := range order {
		p := pairs[w]
		if p.replay <= 0 || p.full <= 0 {
			continue
		}
		s := Speedup{Workload: w, ReplayNs: p.replay, FullNs: p.full, Speedup: p.full / p.replay}
		out = append(out, s)
		if w == "masked-at-layer" {
			masked = s.Speedup
			continue
		}
		logSum += math.Log(s.Speedup)
		n++
	}
	var geo float64
	if n > 0 {
		geo = math.Exp(logSum / float64(n))
	}
	return out, geo, masked
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

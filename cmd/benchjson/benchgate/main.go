// Command benchgate compares two benchjson artifacts and fails when the
// fresh run's geomean speedup has regressed beyond a tolerance against the
// committed baseline. CI's bench-trajectory job runs it for both
// BENCH_inject.json and BENCH_campaign.json, so a change that erodes the
// optimization stack's advantage fails the build instead of silently
// shipping.
//
// Usage:
//
//	benchgate -old BENCH_campaign.json -new BENCH_campaign.new.json [-tolerance 0.10]
//
// The gate passes when new geomean >= old geomean * (1 - tolerance). Only the
// geomean is gated: per-workload ns/op moves with machine load, but the
// geomean of paired same-process ratios is stable enough to enforce.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the benchjson fields the gate reads.
type report struct {
	GeomeanSpeedup float64 `json:"geomean_speedup"`
	Speedups       []struct {
		Workload string  `json:"workload"`
		Speedup  float64 `json:"speedup"`
	} `json:"speedups"`
}

func main() {
	oldPath := flag.String("old", "", "committed baseline artifact")
	newPath := flag.String("new", "", "freshly measured artifact")
	tol := flag.Float64("tolerance", 0.10, "allowed fractional geomean regression")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}

	oldRep, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	if oldRep.GeomeanSpeedup <= 0 {
		fatal(fmt.Errorf("%s has no geomean_speedup; regenerate the baseline with benchjson", *oldPath))
	}
	if newRep.GeomeanSpeedup <= 0 {
		fatal(fmt.Errorf("%s has no geomean_speedup; the paired benchmarks did not run", *newPath))
	}

	for _, s := range newRep.Speedups {
		fmt.Printf("benchgate: %-18s %6.2fx\n", s.Workload, s.Speedup)
	}
	floor := oldRep.GeomeanSpeedup * (1 - *tol)
	fmt.Printf("benchgate: geomean %.2fx (baseline %.2fx, floor %.2fx)\n",
		newRep.GeomeanSpeedup, oldRep.GeomeanSpeedup, floor)
	if newRep.GeomeanSpeedup < floor {
		fmt.Fprintf(os.Stderr,
			"benchgate: FAIL — geomean speedup %.2fx regressed more than %.0f%% below the committed %.2fx\n",
			newRep.GeomeanSpeedup, *tol*100, oldRep.GeomeanSpeedup)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

func load(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

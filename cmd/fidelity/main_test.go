package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("FIDELITY_CLI_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FIDELITY_CLI_TEST=1")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return buf.String(), code
}

func TestSensitivityBatchFlagRejectsNonPositive(t *testing.T) {
	for _, bad := range []string{"0", "-1"} {
		out, code := runCLI(t, "sensitivity", "-batch", bad)
		if code != 2 {
			t.Errorf("sensitivity -batch %s: exit %d, want usage exit 2\n%s", bad, code, out)
		}
		if !strings.Contains(out, "-batch must be positive") {
			t.Errorf("sensitivity -batch %s: missing validation message:\n%s", bad, out)
		}
	}
}

func TestSensitivityTargetCIExcludesSamples(t *testing.T) {
	out, code := runCLI(t, "sensitivity", "-target-ci", "0.05", "-samples", "100")
	if code != 2 || !strings.Contains(out, "mutually exclusive") {
		t.Fatalf("sensitivity -target-ci with -samples: exit %d, output:\n%s", code, out)
	}
}

func TestSensitivityTargetCIRangeValidated(t *testing.T) {
	for _, bad := range []string{"0.6", "-0.2"} {
		out, code := runCLI(t, "sensitivity", "-target-ci", bad)
		if code != 2 || !strings.Contains(out, "-target-ci must be in (0, 0.5]") {
			t.Errorf("sensitivity -target-ci %s: exit %d, output:\n%s", bad, code, out)
		}
	}
}

func TestUnknownSubcommandExitsTwo(t *testing.T) {
	out, code := runCLI(t, "nosuchcmd")
	if code != 2 || !strings.Contains(out, "usage:") {
		t.Fatalf("unknown subcommand: exit %d, output:\n%s", code, out)
	}
}

func TestTable1Runs(t *testing.T) {
	out, code := runCLI(t, "table1")
	if code != 0 || !strings.Contains(out, "Table I") {
		t.Fatalf("table1: exit %d, output:\n%s", code, out)
	}
}

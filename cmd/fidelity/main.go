// Command fidelity prints the FIdelity framework's derived artifacts for an
// accelerator design: the Reuse Factor Analysis summary (Table I), the
// software fault models (Table II), and the Fig 2 worked examples.
//
// Usage:
//
//	fidelity table1
//	fidelity table2 [-csv]
//	fidelity fig2 [-k 4] [-t 16]
//	fidelity census
//
// The injection campaign behind `sensitivity` runs in-process; cmd/study
// runs the full study figures, and cmd/fidelityd distributes the same
// campaigns over machines with byte-identical results.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/core"
	hardenpkg "fidelity/internal/harden"
	"fidelity/internal/numerics"
	"fidelity/internal/report"
	"fidelity/internal/reuse"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the injection campaign behind `sensitivity`
	// cleanly at an experiment boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		err = table1()
	case "table2":
		err = table2(args)
	case "fig2":
		err = fig2(args)
	case "census":
		err = census()
	case "sensitivity":
		err = sensitivity(ctx, args)
	case "harden":
		err = harden(ctx, args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fidelity:", err)
		if errors.Is(err, errPartial) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// errPartial marks a campaign degraded by an exhausted shard failure budget;
// it maps to a distinct exit code so schedulers can tell flagged partial
// results from hard failures.
var errPartial = errors.New("partial result (a shard exhausted its failure budget)")

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fidelity <table1|table2|fig2|census|sensitivity|harden> [flags]

  table1       print the Reuse Factor Analysis summary (paper Table I)
  table2       print the derived NVDLA software fault models (paper Table II)
  fig2         run the Fig 2 reuse-factor examples (NVDLA-like and Eyeriss-like)
  census       print the FF census of the NVDLA-small configuration
  sensitivity  FIT bounds under perturbed FF-count/activeness estimates
  harden       closed hardening loop: campaign -> rank -> mitigate -> re-measure`)
}

func framework() (*core.Framework, error) {
	return core.New(accel.NVDLASmall())
}

func table1() error {
	fw, err := framework()
	if err != nil {
		return err
	}
	fmt.Print(fw.TableI().String())
	return nil
}

func table2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fw, err := framework()
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(fw.TableII().CSV())
	} else {
		fmt.Print(fw.TableII().String())
	}
	return nil
}

func fig2(args []string) error {
	fs := flag.NewFlagSet("fig2", flag.ExitOnError)
	k := fs.Int("k", 4, "NVDLA-like k (k² MACs) / Eyeriss-like array dimension")
	t := fs.Int("t", 16, "weight hold cycles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tab := report.NewTable(
		fmt.Sprintf("Fig 2 reuse-factor examples (k=%d, t=%d)", *k, *t),
		"Target", "Design", "Variable", "RF", "Faulty neuron pattern")
	add := func(name, design, variable string, in reuse.Input, pattern string) error {
		r, err := reuse.Analyze(in)
		if err != nil {
			return err
		}
		tab.Addf("%s|%s|%s|%d|%s", name, design, variable, r.RF, pattern)
		return nil
	}
	k2 := (*k) * (*k)
	if err := add("a1", "NVDLA-like", "weight", reuse.NVDLATargetA1(*t), "t consecutive neurons, one channel"); err != nil {
		return err
	}
	if err := add("a2", "NVDLA-like", "weight", reuse.NVDLATargetA2(*t), "1..t consecutive neurons (random cycle)"); err != nil {
		return err
	}
	if err := add("a3", "NVDLA-like", "weight", reuse.NVDLATargetA3(), "single neuron"); err != nil {
		return err
	}
	if err := add("a4", "NVDLA-like", "input", reuse.NVDLATargetA4(k2), "same 2D position, k² consecutive channels"); err != nil {
		return err
	}
	if err := add("b1", "Eyeriss-like", "weight", reuse.EyerissTargetB1(*k), "k consecutive rows, one column"); err != nil {
		return err
	}
	if err := add("b2", "Eyeriss-like", "input", reuse.EyerissTargetB2(*k, *t), "k rows × t channels, last column"); err != nil {
		return err
	}
	if err := add("b3", "Eyeriss-like", "bias", reuse.EyerissTargetB3(), "single neuron"); err != nil {
		return err
	}
	fmt.Print(tab.String())
	return nil
}

func sensitivity(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sensitivity", flag.ExitOnError)
	net := fs.String("net", "yolo", "workload")
	samples := fs.Int("samples", 200, "experiments per fault model")
	targetCI := fs.Float64("target-ci", 0, "adaptive stratified sampling: stop each stratum once its 95% Wilson CI half-width reaches this target (mutually exclusive with -samples; in (0, 0.5])")
	ffDelta := fs.Float64("ff", 0.3, "relative uncertainty of the FF-count estimate")
	actDelta := fs.Float64("act", 0.2, "relative uncertainty of the activeness estimates")
	expTimeout := fs.Duration("experiment-timeout", 0, "per-experiment watchdog deadline (0 = off)")
	failBudget := fs.Int("failure-budget", 0, "max quarantined experiments per shard (0 = default, negative = unlimited)")
	noReplay := fs.Bool("no-replay", false, "disable the incremental golden-replay engine (bit-identical results, slower)")
	batch := fs.Int("batch", campaign.DefaultExperimentBatch, "experiment batch window for site-grouped execution (1 = unbatched; bit-identical results for every value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *targetCI != 0 {
		samplesSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "samples" {
				samplesSet = true
			}
		})
		if samplesSet {
			fmt.Fprintln(os.Stderr, "fidelity: -samples and -target-ci are mutually exclusive")
			fs.Usage()
			os.Exit(2)
		}
		if *targetCI < 0 || *targetCI > 0.5 {
			fmt.Fprintf(os.Stderr, "fidelity: -target-ci must be in (0, 0.5] (got %g)\n", *targetCI)
			fs.Usage()
			os.Exit(2)
		}
		*samples = 0
	} else if *samples <= 0 {
		fmt.Fprintf(os.Stderr, "fidelity: -samples must be positive (got %d)\n", *samples)
		fs.Usage()
		os.Exit(2)
	}
	if *batch <= 0 {
		fmt.Fprintf(os.Stderr, "fidelity: -batch must be positive (got %d; 1 disables batching)\n", *batch)
		fs.Usage()
		os.Exit(2)
	}
	cfg := accel.NVDLASmall()
	fw, err := core.New(cfg)
	if err != nil {
		return err
	}
	res, err := fw.Analyze(ctx, *net, numerics.FP16, campaign.StudyOptions{
		Samples: *samples, TargetCI: *targetCI, Inputs: 2, Tolerance: 0.1, Seed: 1, Workers: runtime.NumCPU(),
		ExperimentTimeout: *expTimeout, FailureBudget: *failBudget,
		DisableReplay: *noReplay, ExperimentBatch: *batch,
	})
	if err != nil {
		return err
	}
	lo, hi, err := campaign.SensitivityBounds(ctx, cfg, res, *ffDelta, *actDelta)
	if err != nil {
		return err
	}
	fmt.Printf("%s FP16 @10%%: FIT = %.2f\n", *net, res.FIT.Total)
	fmt.Printf("sensitivity (FF count ±%.0f%%, activeness ±%.0f%%): FIT in [%.2f, %.2f]\n",
		*ffDelta*100, *actDelta*100, lo, hi)
	fmt.Printf("ASIL-D FF budget: %.2f — %s even at the optimistic bound\n",
		0.2, verdict(lo))
	if res.Partial {
		return fmt.Errorf("%s: %w (%d experiments quarantined)", *net, errPartial, len(res.Quarantined))
	}
	return nil
}

// harden runs the closed mitigation loop of internal/harden: measure the
// unhardened network per layer, derive and install golden-envelope clamps,
// re-measure the hardened network under the identical campaign (its own
// checkpoint identity), search duplication × global-control protection for
// the cheapest config meeting the budget, and emit the before/after FIT
// report as JSON.
func harden(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("harden", flag.ExitOnError)
	net := fs.String("net", "mobilenet", "workload to harden")
	samples := fs.Int("samples", 20, "experiments per fault model per layer execution")
	inputs := fs.Int("inputs", 2, "inputs per campaign (also the activation-profile set)")
	seed := fs.Int64("seed", 1, "campaign sampling seed")
	budget := fs.Float64("budget", 0, "FIT budget (0 = area-apportioned ASIL-D FF budget)")
	workers := fs.Int("workers", runtime.NumCPU(), "worker goroutines (results are worker-count independent)")
	out := fs.String("o", "", "write the JSON report to a file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *samples <= 0 {
		fmt.Fprintf(os.Stderr, "fidelity: -samples must be positive (got %d)\n", *samples)
		fs.Usage()
		os.Exit(2)
	}
	if *inputs <= 0 {
		fmt.Fprintf(os.Stderr, "fidelity: -inputs must be positive (got %d)\n", *inputs)
		fs.Usage()
		os.Exit(2)
	}
	if *budget < 0 {
		fmt.Fprintf(os.Stderr, "fidelity: -budget must be non-negative (got %g)\n", *budget)
		fs.Usage()
		os.Exit(2)
	}
	rep, err := hardenpkg.Run(ctx, accel.NVDLASmall(), hardenpkg.Options{
		Net:       *net,
		Precision: numerics.FP16,
		Samples:   *samples,
		Inputs:    *inputs,
		Tolerance: 0.1,
		Seed:      *seed,
		Workers:   *workers,
		Budget:    *budget,
	})
	if err != nil {
		if rep != nil && rep.Partial {
			err = fmt.Errorf("%s: %w", *net, errPartial)
		}
		if rep == nil {
			return err
		}
	}
	if *out == "" {
		enc, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			return merr
		}
		os.Stdout.Write(append(enc, '\n'))
	} else if werr := campaign.AtomicWriteJSON(*out, rep); werr != nil {
		return werr
	}
	fmt.Fprintf(os.Stderr, "fidelity: %s FIT %.3f -> %.3f hardened (budget %.3f, meets=%v, dup time share %.1f%%)\n",
		*net, rep.Before.FIT, rep.HardenedFIT, rep.BudgetFIT, rep.MeetsASILD, rep.DupTimeShare*100)
	return err
}

func verdict(lo float64) string {
	if lo > 0.2 {
		return "fails"
	}
	return "may pass"
}

func census() error {
	cfg := accel.NVDLASmall()
	tab := report.NewTable(
		fmt.Sprintf("FF census of %s (%d FFs)", cfg.Name, cfg.NumFFs),
		"Category", "Component", "%FF", "decompress", "FP-only", "INT-only")
	for _, g := range cfg.Census {
		tab.Addf("%s|%s|%.1f%%|%.0f%%|%.0f%%|%.0f%%",
			g.Cat, g.Component, g.Frac*100,
			g.DecompressFrac*100, g.FPOnlyFrac*100, g.IntOnlyFrac*100)
	}
	fmt.Print(tab.String())
	return nil
}

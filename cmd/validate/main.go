// Command validate runs the paper's Sec. IV validation campaign: RTL-style
// fault injections in the cycle-level golden reference (package rtlsim)
// against the Table III workloads, with every non-masked case checked
// against FIdelity's software fault models.
//
// Usage:
//
//	validate [-samples 1000] [-seed 1] [-v]
//
// The paper's campaign is 60K injections (10K per workload); -samples sets
// the per-workload count here.
package main

import (
	"flag"
	"fmt"
	"os"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/core"
)

func main() {
	samples := flag.Int("samples", 1000, "RTL fault injections per Table III workload")
	seed := flag.Int64("seed", 1, "sampling seed")
	verbose := flag.Bool("v", false, "print each mismatch (if any)")
	flag.Parse()

	cfg := accel.NVDLASmall()
	ws, err := campaign.TableIIIWorkloads()
	if err != nil {
		fail(err)
	}
	fmt.Printf("validating %d workloads × %d injections on %s...\n",
		len(ws), *samples, cfg.Name)
	rep, err := campaign.Validate(cfg, ws, *samples, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Print(core.ValidationTable(rep).String())
	if *verbose {
		for _, m := range rep.Mismatches {
			fmt.Println("MISMATCH:", m)
		}
	}
	if len(rep.Mismatches) > 0 {
		fmt.Printf("\nFAIL: %d software-model mismatches\n", len(rep.Mismatches))
		os.Exit(1)
	}
	fmt.Println("\nPASS: all checked cases match the software fault models" +
		" (datapath exact; RF=1 sets exact; global-control mostly non-masked)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}

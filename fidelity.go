// Package fidelity is the public API of this reproduction of "FIdelity:
// Efficient Resilience Analysis Framework for Deep Learning Accelerators"
// (MICRO 2020). FIdelity models hardware logic transient errors —
// single-cycle flip-flop bit-flips — in deep-learning inference accelerators
// as software fault models derived from high-level microarchitectural
// information via Reuse Factor Analysis, enabling RTL-accurate resilience
// analysis at software-fault-injection speed.
//
// Typical use:
//
//	fw, err := fidelity.New(fidelity.NVDLASmall())
//	res, err := fw.Analyze(ctx, "yolo", fidelity.FP16, fidelity.StudyOptions{
//	    Samples: 2000, Inputs: 4, Tolerance: 0.1, Seed: 1,
//	})
//	fmt.Printf("Accelerator FIT rate: %.2f (budget %.2f)\n",
//	    res.FIT.Total, fidelity.FFBudget())
//
// Campaigns are cancellable (cancel ctx), resumable (StudyOptions.Resume
// with a Checkpoint), and observable (StudyOptions.Telemetry); see the
// campaign and telemetry packages.
//
// The package re-exports the framework's building blocks: accelerator
// descriptions (accel), Reuse Factor Analysis (reuse), software fault
// models (faultmodel), FF activeness analysis (activeness), the FIT
// computation (fit), experiment campaigns (campaign), the cycle-level
// validation reference (rtlsim), and the workload zoo (model).
package fidelity

import (
	"context"

	"fidelity/internal/accel"
	"fidelity/internal/baseline"
	"fidelity/internal/campaign"
	"fidelity/internal/core"
	"fidelity/internal/faultmodel"
	"fidelity/internal/fit"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
	"fidelity/internal/reuse"
	"fidelity/internal/telemetry"
)

// Framework is a FIdelity instance bound to an accelerator design.
type Framework = core.Framework

// Config is a high-level accelerator description: hardware configuration,
// scheduling parameters and FF census.
type Config = accel.Config

// StudyOptions parameterizes a resilience study (samples, inputs, metric
// tolerance, seed).
type StudyOptions = campaign.StudyOptions

// StudyResult is a study outcome: per-model masking probabilities and the
// Eq. 2 FIT rates.
type StudyResult = campaign.StudyResult

// ValidationReport summarizes a software-model-vs-golden-reference
// validation campaign.
type ValidationReport = campaign.ValidationReport

// BaselineOptions parameterizes the naive single-bit-flip baseline.
type BaselineOptions = baseline.Options

// BaselineResult is the naive technique's FIT estimate.
type BaselineResult = baseline.Result

// FITResult is an Accelerator_FIT_rate with per-class breakdown.
type FITResult = fit.Result

// Workload pairs a network with its dataset and correctness metric.
type Workload = model.Workload

// ReuseInput is the Algorithm 1 input set.
type ReuseInput = reuse.Input

// ReuseResult is the Algorithm 1 output: the reuse factor and faulty
// neurons.
type ReuseResult = reuse.Result

// UnitID identifies a compute unit in Reuse Factor Analysis inputs.
type UnitID = reuse.UnitID

// Neuron is a relative output-neuron coordinate (batch, h, w, channel).
type Neuron = reuse.Neuron

// FaultModel is one derived software fault model (a Table II row).
type FaultModel = faultmodel.Model

// Precision identifies a datapath number format.
type Precision = numerics.Precision

// Supported datapath precisions.
const (
	FP32  = numerics.FP32
	FP16  = numerics.FP16
	INT16 = numerics.INT16
	INT8  = numerics.INT8
)

// FFClass separates datapath FFs from local/global control FFs.
type FFClass = accel.FFClass

// FF classes for FIT-breakdown lookups (Result.ByClass keys).
const (
	DatapathClass      = accel.Datapath
	LocalControlClass  = accel.LocalControl
	GlobalControlClass = accel.GlobalControl
)

// New builds a FIdelity framework for an accelerator design, deriving its
// software fault models via Reuse Factor Analysis.
func New(cfg *Config) (*Framework, error) { return core.New(cfg) }

// NVDLASmall returns the paper's NVDLA case-study configuration (k² = 16
// MACs, t = 16 weight-hold cycles, Table II census).
func NVDLASmall() *Config { return accel.NVDLASmall() }

// EyerissLike returns a k×k systolic-array configuration (paper Fig 2b).
func EyerissLike(k, t int) *Config { return accel.EyerissLike(k, t) }

// AnalyzeReuse executes Reuse Factor Analysis (Algorithm 1) on a target FF
// description.
func AnalyzeReuse(in ReuseInput) (ReuseResult, error) { return reuse.Analyze(in) }

// DeriveModels derives an accelerator's software fault models (Table II).
func DeriveModels(cfg *Config) ([]FaultModel, error) { return faultmodel.Derive(cfg) }

// BuildWorkload constructs a named evaluation network ("inception",
// "resnet", "mobilenet", "yolo", "transformer", "rnn") at a precision.
func BuildWorkload(name string, prec Precision, seed int64) (*Workload, error) {
	return model.Build(name, prec, seed)
}

// WorkloadNames lists the available evaluation networks.
func WorkloadNames() []string { return model.Names() }

// FFBudget returns the ISO 26262 ASIL-D FIT budget apportioned to the
// accelerator's FFs (< 0.2 for NVDLA-class designs).
func FFBudget() float64 { return fit.FFBudget() }

// MemoryError is one corrupted on-chip-memory word (paper Sec. III-E).
type MemoryError = faultmodel.MemoryError

// MemoryPlan is the derived fault model for a set of memory errors.
type MemoryPlan = faultmodel.MemoryPlan

// SensitivityBounds recomputes a study's FIT under perturbed estimates of
// the FF count (±ffDelta) and activeness (±actDelta) without re-running
// injections — the paper's early-design sensitivity analysis.
func SensitivityBounds(ctx context.Context, cfg *Config, res *StudyResult, ffDelta, actDelta float64) (lo, hi float64, err error) {
	return campaign.SensitivityBounds(ctx, cfg, res, ffDelta, actDelta)
}

// Checkpoint is a resumable snapshot of an interrupted injection campaign
// (per-shard tallies, experiment cursors, and quarantine lists).
type Checkpoint = campaign.Checkpoint

// Interrupted is the error returned by Analyze when its context is
// cancelled mid-campaign; it carries the Checkpoint to resume from.
type Interrupted = campaign.Interrupted

// QuarantinedExperiment records one experiment the campaign supervisor
// removed after a framework failure (recovered panic or watchdog timeout);
// see StudyResult.Quarantined and StudyOptions.{ExperimentTimeout,
// FailureBudget}.
type QuarantinedExperiment = campaign.QuarantinedExperiment

// LoadCheckpoint reads a campaign checkpoint file for StudyOptions.Resume.
func LoadCheckpoint(path string) (*Checkpoint, error) { return campaign.LoadCheckpoint(path) }

// Collector aggregates campaign telemetry: experiment/outcome counters and
// per-phase wall-clock timings, observable concurrently via Snapshot.
type Collector = telemetry.Collector

// TelemetrySnapshot is a point-in-time view of a Collector.
type TelemetrySnapshot = telemetry.Snapshot

// NewCollector returns a telemetry collector for StudyOptions.Telemetry.
func NewCollector() *Collector { return telemetry.New() }

// RawFFFITPerMB is the paper's raw FF FIT rate (600 FIT/MB, soft errors).
const RawFFFITPerMB = fit.RawFFFITPerMB

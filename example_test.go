package fidelity_test

import (
	"fmt"

	"fidelity"
	"fidelity/internal/reuse"
)

// ExampleDeriveModels shows the Table II derivation: from a high-level
// accelerator description to software fault models.
func ExampleDeriveModels() {
	models, err := fidelity.DeriveModels(fidelity.NVDLASmall())
	if err != nil {
		panic(err)
	}
	for _, m := range models {
		switch {
		case m.RFAllUsers:
			fmt.Printf("%v: RF = all users of the value\n", m.ID)
		case m.RFAll:
			fmt.Printf("%v: system failure\n", m.ID)
		default:
			fmt.Printf("%v: RF = %d\n", m.ID, m.RF)
		}
	}
	// Output:
	// beforeCBUF/input: RF = all users of the value
	// beforeCBUF/weight: RF = all users of the value
	// cbuf2mac/input: RF = 16
	// cbuf2mac/weight: RF = 16
	// output/psum: RF = 1
	// local-control: RF = 1
	// global-control: system failure
}

// ExampleAnalyzeReuse runs Algorithm 1 on the paper's Fig 2(a) target a4:
// an input register broadcast to all 16 multipliers.
func ExampleAnalyzeReuse() {
	res, err := fidelity.AnalyzeReuse(reuse.NVDLATargetA4(16))
	if err != nil {
		panic(err)
	}
	fmt.Printf("RF = %d\n", res.RF)
	fmt.Printf("first neuron: %v, last neuron: %v\n",
		res.Faulty[0].Neuron, res.Faulty[len(res.Faulty)-1].Neuron)
	// Output:
	// RF = 16
	// first neuron: (0,0,0,0), last neuron: (0,0,0,15)
}

// ExampleFFBudget shows the ASIL-D apportioning of Key Result 1.
func ExampleFFBudget() {
	fmt.Printf("chip budget %.0f FIT x %.0f%% FF area = %.1f FIT for the FFs\n",
		10.0, 2.0, fidelity.FFBudget())
	// Output:
	// chip budget 10 FIT x 2% FF area = 0.2 FIT for the FFs
}

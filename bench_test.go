package fidelity

// The benchmark harness regenerates every table and figure of the paper's
// evaluation at benchmark-controlled scale. Each benchmark prints the
// paper-style rows once (on the first iteration) and then measures the cost
// of the underlying experiment unit, so `go test -bench=. -benchmem`
// produces both the reproduction artifacts and the performance profile.
//
//	BenchmarkTableII      — software fault model derivation (Table II)
//	BenchmarkFig2         — Reuse Factor Analysis worked examples (Fig 2)
//	BenchmarkValidation   — Sec. IV software-model-vs-golden validation
//	BenchmarkFig4         — CNN FIT × precision (Fig 4)
//	BenchmarkFig5         — Transformer/Yolo FIT × tolerance (Fig 5)
//	BenchmarkFig6         — global-control-protected FIT (Fig 6)
//	BenchmarkKeyResult5   — perturbation-magnitude split (Key Result 5)
//	BenchmarkSpeedup      — Sec. VI per-injection cost comparison
//	BenchmarkBaseline     — Sec. VI naive-FI underestimate
//	BenchmarkInjection    — single software fault injection (the unit of the 46M study)
//	BenchmarkInjectionReplay — incremental golden-replay vs full forward per workload
//	BenchmarkRTLInjection — single cycle-level injection (the golden reference unit)
//	BenchmarkAblation*    — design-choice ablations (see DESIGN.md §5)

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/activeness"
	"fidelity/internal/baseline"
	"fidelity/internal/campaign"
	"fidelity/internal/core"
	"fidelity/internal/dataset"
	"fidelity/internal/faultmodel"
	"fidelity/internal/fit"
	"fidelity/internal/harden"
	"fidelity/internal/inject"
	"fidelity/internal/model"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/reuse"
	"fidelity/internal/rtlsim"
)

var printOnce sync.Map

// once prints s a single time per key across benchmark iterations.
func once(b *testing.B, key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Log("\n" + s)
	}
}

func BenchmarkTableII(b *testing.B) {
	cfg := accel.NVDLASmall()
	fw, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "table2", fw.TableII().String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faultmodel.Derive(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	var sb []byte
	for _, ex := range []struct {
		name string
		in   reuse.Input
	}{
		{"a1", reuse.NVDLATargetA1(16)},
		{"a2", reuse.NVDLATargetA2(16)},
		{"a3", reuse.NVDLATargetA3()},
		{"a4", reuse.NVDLATargetA4(16)},
		{"b1", reuse.EyerissTargetB1(12)},
		{"b2", reuse.EyerissTargetB2(12, 7)},
		{"b3", reuse.EyerissTargetB3()},
	} {
		r, err := reuse.Analyze(ex.in)
		if err != nil {
			b.Fatal(err)
		}
		sb = append(sb, fmt.Sprintf("%s: RF=%d\n", ex.name, r.RF)...)
	}
	once(b, "fig2", string(sb))
	in := reuse.NVDLATargetA4(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reuse.Analyze(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidation(b *testing.B) {
	cfg := accel.NVDLASmall()
	ws, err := campaign.TableIIIWorkloads()
	if err != nil {
		b.Fatal(err)
	}
	rep, err := campaign.Validate(cfg, ws, 60, 1)
	if err != nil {
		b.Fatal(err)
	}
	once(b, "validation", core.ValidationTable(rep).String())
	if rep.DatapathExact != rep.DatapathChecked {
		b.Fatalf("validation mismatches: %v", rep.Mismatches)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Validate(cfg, ws[:1], 5, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStudy runs one figure's study cells at bench scale and prints the
// chart once.
func benchStudy(b *testing.B, key, title string, cells []struct {
	net  string
	prec numerics.Precision
	tol  float64
}, protected bool) {
	cfg := accel.NVDLASmall()
	fw, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var results []*campaign.StudyResult
	for _, c := range cells {
		r, err := fw.Analyze(context.Background(), c.net, c.prec, campaign.StudyOptions{
			Samples: 60, Inputs: 2, Tolerance: c.tol, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, r)
	}
	once(b, key, core.FITChart(title, results, protected).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Analyze(context.Background(), cells[0].net, cells[0].prec, campaign.StudyOptions{
			Samples: 7, Inputs: 1, Tolerance: cells[0].tol, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

type cell = struct {
	net  string
	prec numerics.Precision
	tol  float64
}

func BenchmarkFig4(b *testing.B) {
	var cells []cell
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		for _, p := range []numerics.Precision{numerics.FP16, numerics.INT16, numerics.INT8} {
			cells = append(cells, cell{net, p, 0.1})
		}
	}
	benchStudy(b, "fig4", "Fig 4: Accelerator FIT (CNNs x precision)", cells, false)
}

func BenchmarkFig5(b *testing.B) {
	cells := []cell{
		{"transformer", numerics.FP16, 0.1},
		{"transformer", numerics.FP16, 0.2},
		{"yolo", numerics.FP16, 0.1},
		{"yolo", numerics.FP16, 0.2},
	}
	benchStudy(b, "fig5", "Fig 5: Accelerator FIT (Transformer & Yolo x tolerance)", cells, false)
}

func BenchmarkFig6(b *testing.B) {
	cells := []cell{
		{"inception", numerics.FP16, 0.1},
		{"resnet", numerics.FP16, 0.1},
		{"mobilenet", numerics.FP16, 0.1},
	}
	benchStudy(b, "fig6", "Fig 6: FIT with global control protected", cells, true)
}

func BenchmarkKeyResult5(b *testing.B) {
	cfg := accel.NVDLASmall()
	fw, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var small, large campaign.Proportion
	for _, net := range []string{"inception", "resnet"} {
		r, err := fw.Analyze(context.Background(), net, numerics.FP16, campaign.StudyOptions{
			Samples: 120, Inputs: 2, Tolerance: 0.1, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		small.Successes += r.Perturb.SmallFail.Successes
		small.Trials += r.Perturb.SmallFail.Trials
		large.Successes += r.Perturb.LargeFail.Successes
		large.Trials += r.Perturb.LargeFail.Trials
	}
	once(b, "kr5", fmt.Sprintf(
		"Key Result 5: P(error | single faulty neuron):\n  |delta| <= 100: %.3f (n=%d)\n  |delta| >  100: %.3f (n=%d)\n",
		small.Mean(), small.Trials, large.Mean(), large.Trials))
	if small.Trials > 20 && large.Trials > 20 && large.Mean() <= small.Mean() {
		b.Errorf("large perturbations should fail more often: %.3f vs %.3f", large.Mean(), small.Mean())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Analyze(context.Background(), "resnet", numerics.FP16, campaign.StudyOptions{
			Samples: 7, Inputs: 1, Tolerance: 0.1, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeedup(b *testing.B) {
	cfg := accel.NVDLASmall()
	ws, err := campaign.TableIIIWorkloads()
	if err != nil {
		b.Fatal(err)
	}
	reports, err := campaign.MeasureSpeedup(context.Background(), cfg, ws, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	var sb []byte
	for _, r := range reports {
		sb = append(sb, fmt.Sprintf("%s: vsRTL=%.0fx vsMixed=%.0fx\n", r.Workload, r.VsRTL, r.VsMixed)...)
	}
	once(b, "speedup", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.MeasureSpeedup(context.Background(), cfg, ws[:1], 5, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaseline(b *testing.B) {
	cfg := accel.NVDLASmall()
	w, err := model.Build("resnet", numerics.FP16, 42)
	if err != nil {
		b.Fatal(err)
	}
	nb, err := baseline.Run(cfg, w, baseline.Options{Samples: 80, Inputs: 2, Tolerance: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st, err := campaign.Study(context.Background(), cfg, w, campaign.StudyOptions{Samples: 40, Inputs: 2, Tolerance: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	once(b, "naive", fmt.Sprintf("naive FIT=%.3f vs FIdelity FIT=%.3f (underestimate %.1fx)\n",
		nb.FIT, st.FIT.Total, baseline.Underestimate(st.FIT.Total, nb)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Run(cfg, w, baseline.Options{Samples: 4, Inputs: 1, Tolerance: 0.1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInjection measures the unit cost of the 46M-experiment study: one
// software fault injection end to end.
func BenchmarkInjection(b *testing.B) {
	cfg := accel.NVDLASmall()
	w, err := model.Build("resnet", numerics.FP16, 42)
	if err != nil {
		b.Fatal(err)
	}
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := faultmodel.NewSampler(models, 1)
	if err != nil {
		b.Fatal(err)
	}
	inj := inject.New(w, s)
	x, err := dataset.Sample(w.Dataset, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := inj.Prepare(x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inj.Run(context.Background(), faultmodel.CBUFMACWeight, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInjector builds a prepared injector for net with the replay engine on
// or off, mirroring BenchmarkInjection's setup.
func benchInjector(b *testing.B, net string, disableReplay bool) *inject.Injector {
	b.Helper()
	cfg := accel.NVDLASmall()
	w, err := model.Build(net, numerics.FP16, 42)
	if err != nil {
		b.Fatal(err)
	}
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := faultmodel.NewSampler(models, 1)
	if err != nil {
		b.Fatal(err)
	}
	inj := inject.New(w, s)
	inj.DisableReplay = disableReplay
	x, err := dataset.Sample(w.Dataset, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := inj.Prepare(x); err != nil {
		b.Fatal(err)
	}
	return inj
}

// BenchmarkInjectionReplay compares the per-experiment cost of the
// incremental golden-replay engine against a full forward pass, across the
// CNN zoo plus the masked-at-layer fast path (an injection whose fault is
// absorbed before leaving the target layer, so replay executes no suffix at
// all). `make bench-json` turns this benchmark into BENCH_inject.json with
// per-workload speedups.
func BenchmarkInjectionReplay(b *testing.B) {
	modes := []struct {
		name    string
		disable bool
	}{{"replay", false}, {"full", true}}
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		for _, mode := range modes {
			b.Run(net+"/"+mode.name, func(b *testing.B) {
				inj := benchInjector(b, net, mode.disable)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := inj.Run(context.Background(), faultmodel.CBUFMACWeight, 0.1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// Pin the injection site to resnet's res2 projection shortcut — a 1x1
	// stride-2 conv where most input elements fall off the stride lattice, so
	// the reuse set is empty and the experiment masks at the layer. Replay
	// returns without executing any downstream layer.
	for _, mode := range modes {
		b.Run("masked-at-layer/"+mode.name, func(b *testing.B) {
			inj := benchInjector(b, "resnet", mode.disable)
			idx := -1
			for i := 0; i < inj.Executions(); i++ {
				if inj.Execution(i).Site.Name() == "res2/proj" {
					idx = i
					break
				}
			}
			if idx < 0 {
				b.Fatal("res2/proj execution not found")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inj.RunAt(context.Background(), idx, faultmodel.BeforeCBUFInput, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdaptive measures the adaptive planner's experiment savings at
// equal statistical resolution: each CNN runs once with Wilson-CI early
// stopping (TargetCI) and once with the fixed per-stratum count
// SamplesFor(TargetCI) that guarantees the same worst-case half-width. The
// reported "ns/op" value is experiments executed per campaign, not time, so
// the paired BENCH_adaptive.json speedup is the fixed/adaptive experiment
// ratio — the quantity the adaptive sampler exists to shrink. The zoo runs
// at INT8, where masking probabilities sit near the extremes and early
// stopping pays most; FP16's datapath strata are mid-range, so its savings
// are smaller (~3x) and bounded by the strata that genuinely need the
// worst-case budget. `make bench-json` turns this into BENCH_adaptive.json.
func BenchmarkAdaptive(b *testing.B) {
	cfg := accel.NVDLASmall()
	const target = 0.03
	modes := []struct {
		name string
		opts campaign.StudyOptions
	}{
		{"adaptive", campaign.StudyOptions{TargetCI: target, Inputs: 1, Tolerance: 0.1, Seed: 1}},
		{"fixed", campaign.StudyOptions{Samples: campaign.SamplesFor(target), Inputs: 1, Tolerance: 0.1, Seed: 1}},
	}
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		w, err := model.Build(net, numerics.INT8, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range modes {
			b.Run(net+"/"+mode.name, func(b *testing.B) {
				exps := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := campaign.Study(context.Background(), cfg, w, mode.opts)
					if err != nil {
						b.Fatal(err)
					}
					exps = res.Experiments
				}
				b.ReportMetric(float64(exps), "ns/op")
			})
		}
	}
}

// BenchmarkCampaign measures full-campaign wall clock — golden trace, every
// fault model, tallies, FIT — under the optimized execution stack (tiled
// kernels, dirty-region sweeps, site-grouped experiment batching, one shared
// golden trace per input) against the engine exactly as it stood before that
// stack landed: reference kernels, whole-layer recomputes, unbatched shard
// loop, per-shard golden tracing. The replay engine itself is on in both
// modes (it predates the stack), so the ratio isolates this PR's
// contribution. `make bench-json` turns it into BENCH_campaign.json with
// per-workload speedups and their geomean.
func BenchmarkCampaign(b *testing.B) {
	cfg := accel.NVDLASmall()
	modes := []struct {
		name     string
		baseline bool
	}{{"optimized", false}, {"baseline", true}}
	for _, net := range []string{"inception", "resnet", "mobilenet", "yolo"} {
		w, err := model.Build(net, numerics.FP16, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range modes {
			b.Run(net+"/"+mode.name, func(b *testing.B) {
				opts := campaign.StudyOptions{Samples: 24, Inputs: 1, Tolerance: 0.1, Seed: 1}
				if mode.baseline {
					nn.SetReferenceKernels(true)
					defer nn.SetReferenceKernels(false)
					opts.DisableRegionSweep = true
					opts.ExperimentBatch = 1
					opts.DisableGoldenShare = true
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := campaign.Study(context.Background(), cfg, w, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHarden measures the closed hardening loop's FIT reduction: each
// CNN runs one per-layer campaign unhardened and one with the golden-envelope
// clamps installed (README "Hardening", DESIGN.md §11). Like
// BenchmarkAdaptive, the reported "ns/op" value re-purposes the slot for a
// deterministic quantity — the global-control-protected FIT in micro-FIT
// (FIT × 1e6) — so the paired BENCH_harden.json "speedup" is the
// baseline/hardened FIT ratio, the factor range restriction buys. Both
// campaigns are shard-deterministic, so the artifact is byte-stable across
// machines and the trajectory gate never sees timing noise. `make bench-json`
// turns this into BENCH_harden.json.
func BenchmarkHarden(b *testing.B) {
	cfg := accel.NVDLASmall()
	opts := campaign.StudyOptions{Samples: 12, Inputs: 1, Tolerance: 0.1, Seed: 1, PerLayer: true}
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		plain, err := model.Build(net, numerics.FP16, 42)
		if err != nil {
			b.Fatal(err)
		}
		prof, err := harden.Profile(plain, opts.Inputs)
		if err != nil {
			b.Fatal(err)
		}
		hcfg, err := harden.RangeRestriction{Envelopes: prof}.Plan(cfg, nil, harden.Config{})
		if err != nil {
			b.Fatal(err)
		}
		hw, err := model.Build(net, numerics.FP16, 42)
		if err != nil {
			b.Fatal(err)
		}
		if err := hcfg.Apply(hw.Net); err != nil {
			b.Fatal(err)
		}
		hopts := opts
		if hopts.Hardening, err = hcfg.Fingerprint(); err != nil {
			b.Fatal(err)
		}
		modes := []struct {
			name string
			w    *model.Workload
			opts campaign.StudyOptions
		}{{"baseline", plain, opts}, {"hardened", hw, hopts}}
		for _, mode := range modes {
			b.Run(net+"/"+mode.name, func(b *testing.B) {
				var microFIT float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := campaign.Study(context.Background(), cfg, mode.w, mode.opts)
					if err != nil {
						b.Fatal(err)
					}
					microFIT = res.FITProtected.Total * 1e6
				}
				if microFIT <= 0 {
					b.Fatalf("%s FIT collapsed to zero; the pairing needs a positive residual", mode.name)
				}
				b.ReportMetric(microFIT, "ns/op")
			})
		}
	}
}

// BenchmarkRTLInjection measures the golden-reference unit cost for the
// speedup comparison.
func BenchmarkRTLInjection(b *testing.B) {
	cfg := accel.NVDLASmall()
	ws, err := campaign.TableIIIWorkloads()
	if err != nil {
		b.Fatal(err)
	}
	l := ws[0].RTL
	start, end, err := rtlsim.ComputeWindow(cfg, l)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &rtlsim.Fault{FF: rtlsim.FFWReg, Mac: i % cfg.AtomicK, Bit: i % 16,
			Cycle: start + int64(i)%(end-start)}
		if _, err := rtlsim.Run(cfg, l, f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationActiveness quantifies how much the FF activeness analysis
// (Eq. 1) changes the FIT estimate — disabling it is the pessimistic
// "always active" assumption.
func BenchmarkAblationActiveness(b *testing.B) {
	cfg := accel.NVDLASmall()
	perf, err := activeness.NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	spec := accel.ConvSpec("c", 1, 16, 16, 64, 3, 3, 32, 1, numerics.FP16)
	an, err := activeness.Analyze(cfg, perf, spec)
	if err != nil {
		b.Fatal(err)
	}
	withAct := fit.LayerStats{Layer: "l", ExecTime: 1, ProbInactive: an.ProbInactive,
		ProbMasked: map[accel.Category]float64{}}
	noAct := fit.LayerStats{Layer: "l", ExecTime: 1, ProbInactive: map[accel.Category]float64{},
		ProbMasked: map[accel.Category]float64{}}
	for _, g := range cfg.Census {
		withAct.ProbMasked[g.Cat] = 0.9
		noAct.ProbMasked[g.Cat] = 0.9
		noAct.ProbInactive[g.Cat] = 0
	}
	raw := fit.RawFITPerFF(fit.RawFFFITPerMB)
	rw, err := fit.Compute(cfg, raw, []fit.LayerStats{withAct})
	if err != nil {
		b.Fatal(err)
	}
	rn, err := fit.Compute(cfg, raw, []fit.LayerStats{noAct})
	if err != nil {
		b.Fatal(err)
	}
	once(b, "ablation-act", fmt.Sprintf(
		"activeness ablation: FIT with Eq.1 = %.3f, always-active = %.3f (%.2fx pessimism)\n",
		rw.Total, rn.Total, rn.Total/rw.Total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := activeness.Analyze(cfg, perf, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHoldCycles sweeps the weight-hold parameter t — the
// FF_value_cycles sensitivity analysis DESIGN.md calls out.
func BenchmarkAblationHoldCycles(b *testing.B) {
	var sb []byte
	for _, t := range []int{1, 4, 16, 64} {
		r, err := reuse.Analyze(reuse.NVDLATargetA2(t))
		if err != nil {
			b.Fatal(err)
		}
		sb = append(sb, fmt.Sprintf("t=%d -> weight RF=%d\n", t, r.RF)...)
	}
	once(b, "ablation-hold", string(sb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reuse.Analyze(reuse.NVDLATargetA2(16)); err != nil {
			b.Fatal(err)
		}
	}
}

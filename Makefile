# Mirrors .github/workflows/ci.yml — `make ci` runs everything CI runs
# (except `lint`, which downloads its pinned tools and so needs network).

GO ?= go

# Pinned lint tooling — keep in sync with the `lint` job in ci.yml.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# Coordinator address used by the `work` convenience target.
COORDINATOR ?= http://127.0.0.1:9090

.PHONY: build test race chaos bench bench-json fmt vet lint serve work e2e-distrib ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages: the sharded campaign engine,
# the injector, and the distributed fabric (coordinator + workers exchanging
# leases over loopback HTTP). Slow: several minutes under -race.
race:
	$(GO) test -race -timeout 30m ./internal/campaign/... ./internal/inject/... ./internal/distrib/...

# The chaos self-test harness: synthetic panics, hangs, and I/O errors
# injected into live campaigns; the supervisor must recover deterministically.
# Run twice under -race — the watchdog's abandoned-goroutine protocol and the
# resume paths are exactly where flakes would hide.
chaos:
	$(GO) test -race -timeout 30m -run 'Chaos' -count=2 ./internal/campaign/...

# One iteration of every benchmark — smoke, not measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Measure the replay-vs-full injection benchmark and export it as a
# benchstat-compatible JSON artifact (per-workload ns/op + allocs/op,
# speedups, and the CNN-zoo geomean). CI uploads BENCH_inject.json.
bench-json:
	$(GO) test -run '^$$' -bench '^BenchmarkInjectionReplay$$' -benchmem . > bench_inject.txt
	$(GO) run ./cmd/benchjson -o BENCH_inject.json < bench_inject.txt
	@rm -f bench_inject.txt

fmt:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "files need gofmt:"; echo "$$diff"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis + known-vulnerability scan, pinned so CI and local runs
# agree. Downloads the tools on first use (network required).
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Run a distributed-campaign coordinator on :9090 with durable state; point
# one or more `make work` invocations (any machine) at it.
serve:
	$(GO) run ./cmd/fidelityd serve -state fidelityd.state.json $(SERVE_FLAGS)

# Run a worker against $(COORDINATOR).
work:
	$(GO) run ./cmd/fidelityd work -coordinator $(COORDINATOR) $(WORK_FLAGS)

# The distributed-fabric end-to-end suite under -race: byte-identical results
# at 1/2/4 workers, killed-worker lease recovery, coordinator restart.
e2e-distrib:
	$(GO) test -race -count=1 -run 'TestDistrib' ./internal/distrib/

ci: fmt vet build test race chaos bench

# Mirrors .github/workflows/ci.yml — `make ci` runs everything CI runs.

GO ?= go

.PHONY: build test race chaos bench fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages (the sharded campaign engine
# and the injector). Slow: the campaign suite takes several minutes under -race.
race:
	$(GO) test -race -timeout 30m ./internal/campaign/... ./internal/inject/...

# The chaos self-test harness: synthetic panics, hangs, and I/O errors
# injected into live campaigns; the supervisor must recover deterministically.
# Run twice under -race — the watchdog's abandoned-goroutine protocol and the
# resume paths are exactly where flakes would hide.
chaos:
	$(GO) test -race -timeout 30m -run 'Chaos' -count=2 ./internal/campaign/...

# One iteration of every benchmark — smoke, not measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

fmt:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "files need gofmt:"; echo "$$diff"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race chaos bench

# Mirrors .github/workflows/ci.yml — `make ci` runs everything CI runs.

GO ?= go

.PHONY: build test race bench fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages (the sharded campaign engine
# and the injector). Slow: the campaign suite takes several minutes under -race.
race:
	$(GO) test -race -timeout 30m ./internal/campaign/... ./internal/inject/...

# One iteration of every benchmark — smoke, not measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

fmt:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "files need gofmt:"; echo "$$diff"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race bench

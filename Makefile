# Mirrors .github/workflows/ci.yml — `make ci` runs everything CI runs
# (except `lint`, which downloads its pinned tools and so needs network).

GO ?= go

# Pinned lint tooling — keep in sync with the `lint` job in ci.yml.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# Coordinator address used by the `work` convenience target.
COORDINATOR ?= http://127.0.0.1:9090

.PHONY: build test race chaos chaos-distrib bench bench-json fmt vet fidelitylint lint verify serve work e2e-distrib harden e2e-harden ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages: the sharded campaign engine,
# the injector, the goroutine-tiled kernels (nn + tensor), and the distributed
# fabric (coordinator + workers exchanging leases over loopback HTTP). Slow:
# several minutes under -race.
race:
	$(GO) test -race -timeout 30m ./internal/campaign/... ./internal/inject/... ./internal/nn/... ./internal/tensor/... ./internal/distrib/...

# The chaos self-test harness: synthetic panics, hangs, and I/O errors
# injected into live campaigns; the supervisor must recover deterministically.
# Run twice under -race — the watchdog's abandoned-goroutine protocol and the
# resume paths are exactly where flakes would hide.
chaos:
	$(GO) test -race -timeout 30m -run 'Chaos' -count=2 ./internal/campaign/...

# The distribution-layer chaos + integrity suite (DESIGN.md §9): the seeded
# transport-chaos differential (drops, delays, duplicates, truncation, bit
# corruption, 5xx bursts at 1/2/4 workers must stay byte-identical to a
# clean run), result audits catching a lying worker, graceful drain,
# corrupted/legacy state recovery, and the lease-table dedup/stale/audit
# unit tests. Run twice under -race — retry and re-issue paths are exactly
# where flakes would hide.
chaos-distrib:
	$(GO) test -race -timeout 30m -count=2 -run 'TestChaos|TestDistribAudit|TestDistribDrain|TestCoordinatorState|TestLeaseTable' ./internal/distrib/

# One iteration of every benchmark — smoke, not measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Measure the paired benchmarks and export them as benchstat-compatible JSON
# artifacts (per-workload ns/op + allocs/op, speedups, and the geomean):
# replay-vs-full per injection (BENCH_inject.json), optimized-vs-baseline per
# campaign (BENCH_campaign.json), adaptive-vs-fixed experiment counts at
# equal Wilson CI (BENCH_adaptive.json), and hardened-vs-baseline FIT
# (BENCH_harden.json). CI uploads all four.
bench-json:
	$(GO) test -run '^$$' -bench '^BenchmarkInjectionReplay$$' -benchmem . > bench_inject.txt
	$(GO) run ./cmd/benchjson -o BENCH_inject.json < bench_inject.txt
	@rm -f bench_inject.txt
	$(GO) test -run '^$$' -bench '^BenchmarkCampaign$$' -timeout 60m . > bench_campaign.txt
	$(GO) run ./cmd/benchjson -o BENCH_campaign.json < bench_campaign.txt
	@rm -f bench_campaign.txt
	$(GO) test -run '^$$' -bench '^BenchmarkAdaptive$$' -timeout 60m . > bench_adaptive.txt
	$(GO) run ./cmd/benchjson -o BENCH_adaptive.json < bench_adaptive.txt
	@rm -f bench_adaptive.txt
	$(GO) test -run '^$$' -bench '^BenchmarkHarden$$' -timeout 60m . > bench_harden.txt
	$(GO) run ./cmd/benchjson -o BENCH_harden.json < bench_harden.txt
	@rm -f bench_harden.txt

# Regenerate the benchmark artifacts into *.new.json and gate them against
# the committed baselines: fail if either geomean speedup regressed by more
# than 10%. Mirrors CI's bench-trajectory job.
bench-gate:
	cp BENCH_inject.json BENCH_inject.base.json
	cp BENCH_campaign.json BENCH_campaign.base.json
	cp BENCH_adaptive.json BENCH_adaptive.base.json
	cp BENCH_harden.json BENCH_harden.base.json
	$(MAKE) bench-json
	$(GO) run ./cmd/benchjson/benchgate -old BENCH_inject.base.json -new BENCH_inject.json
	$(GO) run ./cmd/benchjson/benchgate -old BENCH_campaign.base.json -new BENCH_campaign.json
	$(GO) run ./cmd/benchjson/benchgate -old BENCH_adaptive.base.json -new BENCH_adaptive.json
	$(GO) run ./cmd/benchjson/benchgate -old BENCH_harden.base.json -new BENCH_harden.json
	@rm -f BENCH_inject.base.json BENCH_campaign.base.json BENCH_adaptive.base.json BENCH_harden.base.json

fmt:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "files need gofmt:"; echo "$$diff"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The repo's own invariant checkers (DESIGN.md §8): build the vettool from
# source — stdlib only, no network — and run it over every package. Fails on
# any unsuppressed finding, including malformed or unused //lint:allow
# comments.
fidelitylint:
	$(GO) build -o bin/fidelitylint ./cmd/fidelitylint
	$(GO) vet -vettool=$(CURDIR)/bin/fidelitylint ./...

# Static analysis + known-vulnerability scan, pinned so CI and local runs
# agree. fidelitylint runs first: it builds offline, so air-gapped runners
# still get invariant checking even when the network-fetched tools below are
# skipped. staticcheck/govulncheck download on first use (network required);
# when the tool itself cannot be fetched (offline/air-gapped runs), warn and
# skip rather than fail — real findings from a tool that did run still fail.
# Keep the error patterns in sync with the `lint` job in ci.yml.
OFFLINE_ERRS := dial tcp|no such host|i/o timeout|connection refused|TLS handshake timeout|proxyconnect
lint: fidelitylint
	@out=$$($(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... 2>&1); st=$$?; \
	echo "$$out"; \
	if [ $$st -ne 0 ] && echo "$$out" | grep -Eq '$(OFFLINE_ERRS)'; then \
		echo "lint: WARNING: staticcheck unavailable offline, skipping"; \
	elif [ $$st -ne 0 ]; then exit $$st; fi
	@out=$$($(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./... 2>&1); st=$$?; \
	echo "$$out"; \
	if [ $$st -ne 0 ] && echo "$$out" | grep -Eq '$(OFFLINE_ERRS)'; then \
		echo "lint: WARNING: govulncheck unavailable offline, skipping"; \
	elif [ $$st -ne 0 ]; then exit $$st; fi

# Run a distributed-campaign coordinator on :9090 with durable state; point
# one or more `make work` invocations (any machine) at it.
serve:
	$(GO) run ./cmd/fidelityd serve -state fidelityd.state.json $(SERVE_FLAGS)

# Run a worker against $(COORDINATOR).
work:
	$(GO) run ./cmd/fidelityd work -coordinator $(COORDINATOR) $(WORK_FLAGS)

# The distributed-fabric end-to-end suite under -race: byte-identical results
# at 1/2/4 workers, killed-worker lease recovery, coordinator restart.
e2e-distrib:
	$(GO) test -race -count=1 -run 'TestDistrib' ./internal/distrib/

# The closed hardening loop (README "Hardening", DESIGN.md §11): baseline
# campaign → golden-envelope clamps → re-campaign → recommendation, emitting
# a before/after FIT report as JSON. HARDEN_FLAGS overrides the defaults.
harden:
	$(GO) run ./cmd/fidelity harden $(HARDEN_FLAGS)

# The hardening end-to-end suite under -race: golden bit-identity with clamps
# installed, byte-identical hardened campaigns at 1/2/4 workers and replay
# on/off, interrupt/resume with the hardening checkpoint identity, and the
# full pipeline meeting the ASIL-D budget. Mirrors CI's harden-e2e job.
e2e-harden:
	$(GO) test -race -count=1 ./internal/harden/

# The fast pre-commit gate: format, vet, the repo's own invariant checkers,
# build, test. Everything here runs offline.
verify: fmt vet fidelitylint build test

ci: fmt vet fidelitylint build test race chaos chaos-distrib bench

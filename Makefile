# Mirrors .github/workflows/ci.yml — `make ci` runs everything CI runs.

GO ?= go

.PHONY: build test race chaos bench bench-json fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages (the sharded campaign engine
# and the injector). Slow: the campaign suite takes several minutes under -race.
race:
	$(GO) test -race -timeout 30m ./internal/campaign/... ./internal/inject/...

# The chaos self-test harness: synthetic panics, hangs, and I/O errors
# injected into live campaigns; the supervisor must recover deterministically.
# Run twice under -race — the watchdog's abandoned-goroutine protocol and the
# resume paths are exactly where flakes would hide.
chaos:
	$(GO) test -race -timeout 30m -run 'Chaos' -count=2 ./internal/campaign/...

# One iteration of every benchmark — smoke, not measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Measure the replay-vs-full injection benchmark and export it as a
# benchstat-compatible JSON artifact (per-workload ns/op + allocs/op,
# speedups, and the CNN-zoo geomean). CI uploads BENCH_inject.json.
bench-json:
	$(GO) test -run '^$$' -bench '^BenchmarkInjectionReplay$$' -benchmem . > bench_inject.txt
	$(GO) run ./cmd/benchjson -o BENCH_inject.json < bench_inject.txt
	@rm -f bench_inject.txt

fmt:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "files need gofmt:"; echo "$$diff"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race chaos bench

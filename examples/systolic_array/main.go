// Broad applicability demo: the same single-cycle FF bit-flip abstraction
// applied to a second, independently implemented cycle-level design — an
// output-stationary systolic matmul array (the Fig 2(b) design class).
// Reuse Factor Analysis predicts RF = k for the streaming registers and
// RF = 1 for stationary accumulators; the simulation confirms the patterns.
//
//	go run ./examples/systolic_array
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fidelity/internal/numerics"
	"fidelity/internal/systolic"
	"fidelity/internal/tensor"
)

func main() {
	const k = 4
	codec := numerics.MustCodec(numerics.FP16, 0)
	rng := rand.New(rand.NewSource(7))
	a, b := tensor.New(k, 12), tensor.New(12, k)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)

	golden, err := systolic.Run(k, a, b, codec, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%dx%d output-stationary array, C = A(%dx%d)·B(%dx%d), %d cycles\n\n",
		k, k, a.Dim(0), a.Dim(1), b.Dim(0), b.Dim(1), golden.Cycles)

	span := systolic.TileCycles(k, 12)
	type stat struct{ hits, maxRF int }
	stats := map[systolic.FF]*stat{
		systolic.FFARow: {}, systolic.FFBCol: {}, systolic.FFAcc: {},
	}
	for ff, st := range stats {
		for trial := 0; trial < 200; trial++ {
			f := &systolic.Fault{
				FF: ff, Row: rng.Intn(k), Col: rng.Intn(k),
				Bit: 14, Cycle: rng.Int63n(span),
			}
			faulty, err := systolic.Run(k, a, b, codec, f)
			if err != nil {
				log.Fatal(err)
			}
			diffs := golden.Out.DiffIndices(faulty.Out, 0)
			if len(diffs) == 0 {
				continue
			}
			st.hits++
			if len(diffs) > st.maxRF {
				st.maxRF = len(diffs)
			}
		}
	}
	fmt.Printf("%-8s %-22s %-12s %s\n", "FF", "Algorithm 1 predicts", "observed RF", "live faults")
	fmt.Printf("%-8s %-22s %-12d %d\n", "pe.a", "RF <= k (one row)", stats[systolic.FFARow].maxRF, stats[systolic.FFARow].hits)
	fmt.Printf("%-8s %-22s %-12d %d\n", "pe.b", "RF <= k (one column)", stats[systolic.FFBCol].maxRF, stats[systolic.FFBCol].hits)
	fmt.Printf("%-8s %-22s %-12d %d\n", "pe.acc", "RF = 1 (stationary)", stats[systolic.FFAcc].maxRF, stats[systolic.FFAcc].hits)
	fmt.Println()
	fmt.Println("The reuse a dataflow exploits spatially (streaming operands across")
	fmt.Println("PEs) sets the blast radius of a single-cycle upset — the same")
	fmt.Println("conclusion FIdelity draws for the NVDLA-like design.")
}

// Selective protection study (paper Key Result 2 / Fig 6): protecting only
// the global control FFs removes the dominant FIT contribution — but the
// datapath and local-control residue still exceeds the ASIL-D FF budget, so
// analysis frameworks like FIdelity remain essential for the rest of the
// design.
//
//	go run ./examples/protect_global
package main

import (
	"context"
	"fmt"
	"log"

	"fidelity"
)

func main() {
	fw, err := fidelity.New(fidelity.NVDLASmall())
	if err != nil {
		log.Fatal(err)
	}
	budget := fidelity.FFBudget()
	fmt.Printf("ASIL-D FF budget: %.2f FIT\n\n", budget)
	fmt.Printf("%-12s %12s %14s %10s\n", "workload", "unprotected", "global-protected", "verdict")
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		res, err := fw.Analyze(context.Background(), net, fidelity.FP16, fidelity.StudyOptions{
			Samples:   500,
			Inputs:    4,
			Tolerance: 0.1,
			Seed:      23,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "still FAILS"
		if res.FITProtected.Total < budget {
			verdict = "meets"
		}
		fmt.Printf("%-12s %12.2f %14.2f   %s\n", net, res.FIT.Total, res.FITProtected.Total, verdict)
	}
	fmt.Println()
	fmt.Println("Takeaway (Key Result 2): global-control protection alone is not")
	fmt.Println("sufficient; datapath and local-control FFs need resilience analysis")
	fmt.Println("and selective protection too.")
}

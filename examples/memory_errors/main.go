// Memory-error analysis (paper Sec. III-E): FIdelity's reuse analysis also
// models errors in on-chip memory words — a single-bit upset behaves exactly
// like a fault in the datapath FFs feeding the buffer, and multi-word upsets
// corrupt the union of the per-word reuse sets. This example injects memory
// errors into a convolution layer and cross-checks the software model
// against the cycle-level simulator.
//
//	go run ./examples/memory_errors
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/rtlsim"
	"fidelity/internal/tensor"
)

func main() {
	codec := numerics.MustCodec(numerics.FP16, 0)
	cfg := accel.NVDLASmall()
	rng := rand.New(rand.NewSource(99))

	conv := nn.NewConv2D("conv", 3, 3, 3, 16, 1, 1, codec).InitRandom(rng, 0.4)
	x := tensor.New(1, 12, 12, 3)
	x.RandNormal(rng, 1)
	golden := conv.Forward(x, nil)
	layer := rtlsim.ConvLayer(x, conv.W, conv.B.Data(), 1, 1, codec)

	fmt.Println("Sec. III-E: memory-error modeling (SEU and multi-bit upsets)")
	fmt.Println()
	for _, scenario := range []struct {
		name string
		errs []faultmodel.MemoryError
	}{
		{"1 input word, 1 bit (SEU)", []faultmodel.MemoryError{
			{Kind: nn.OperandInput, Word: 100, Bits: []int{14}},
		}},
		{"1 weight word, 2 bits (MBU)", []faultmodel.MemoryError{
			{Kind: nn.OperandWeight, Word: 200, Bits: []int{13, 5}},
		}},
		{"3 words across both buffers", []faultmodel.MemoryError{
			{Kind: nn.OperandInput, Word: 10, Bits: []int{12}},
			{Kind: nn.OperandInput, Word: 250, Bits: []int{14}},
			{Kind: nn.OperandWeight, Word: 77, Bits: []int{10}},
		}},
	} {
		op := &nn.Operands{In: x, W: conv.W, B: conv.B, Out: golden.Clone()}
		plan, err := faultmodel.PlanMemoryErrors(conv, op, scenario.errs)
		if err != nil {
			log.Fatal(err)
		}
		changes := faultmodel.ApplyMemory(plan, conv, op)

		// Cross-check against the cycle-level simulator.
		var mems []rtlsim.MemFault
		for _, e := range scenario.errs {
			mems = append(mems, rtlsim.MemFault{
				Weight: e.Kind == nn.OperandWeight, Word: e.Word, Bits: e.Bits,
			})
		}
		rtl, err := rtlsim.RunWithMemoryFaults(cfg, layer, mems)
		if err != nil {
			log.Fatal(err)
		}
		match := "EXACT MATCH"
		if len(op.Out.DiffIndices(rtl.Out, 0)) != 0 {
			match = "MISMATCH"
		}
		fmt.Printf("%-32s reuse set %4d neurons, %4d changed  -> %s vs cycle sim\n",
			scenario.name, len(plan.Neurons), len(changes), match)
	}
	fmt.Println()
	fmt.Println("The same fault-injection flow (Fig 3) then applies unchanged:")
	fmt.Println("memory fault models feed the campaign and Eq. 2 like FF models.")
}

// Precision sweep (paper Key Result 4): how data precision changes the
// Accelerator FIT rate. The paper observes FP16 networks showing higher FIT
// than their INT16/INT8 counterparts (the FP16 dynamic range admits huge
// perturbations), and INT8 generally above INT16 (coarser quantization makes
// the same bit position a larger real perturbation).
//
//	go run ./examples/precision_sweep
package main

import (
	"context"
	"fmt"
	"log"

	"fidelity"
)

func main() {
	fw, err := fidelity.New(fidelity.NVDLASmall())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Key Result 4: FIT vs data precision (datapath + local control only,")
	fmt.Println("global control is precision-independent by construction)")
	fmt.Println()
	for _, net := range []string{"inception", "resnet", "mobilenet"} {
		fmt.Printf("%s:\n", net)
		for _, prec := range []fidelity.Precision{fidelity.FP16, fidelity.INT16, fidelity.INT8} {
			res, err := fw.Analyze(context.Background(), net, prec, fidelity.StudyOptions{
				Samples:   300,
				Inputs:    3,
				Tolerance: 0.1,
				Seed:      11,
			})
			if err != nil {
				log.Fatal(err)
			}
			nonGlobal := res.FIT.Total - res.FIT.ByClass[fidelity.GlobalControlClass]
			fmt.Printf("  %-6s total FIT %.2f | datapath+local %.3f\n",
				res.Precision, res.FIT.Total, nonGlobal)
		}
	}
	fmt.Println()
	fmt.Println("Mechanism check (Key Result 5): in FP16, flipping an exponent bit")
	fmt.Println("multiplies a value by up to 2^16, and faulty-neuron perturbations")
	fmt.Println("above 100 are far more likely to flip the Top-1 label than small ones.")
}

// Quickstart: derive the NVDLA software fault models, run a small
// resilience study on ResNet at FP16, and print the Accelerator FIT rate
// against the ASIL-D budget.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"fidelity"
)

func main() {
	// 1. Bind FIdelity to an accelerator design. Everything the framework
	// needs is high-level: atomics, scheduling parameters, FF census.
	fw, err := fidelity.New(fidelity.NVDLASmall())
	if err != nil {
		log.Fatal(err)
	}

	// 2. The derived software fault models are the paper's Table II.
	fmt.Print(fw.TableII().String())
	fmt.Println()

	// 3. Run a fault-injection study: samples per fault model, rotating
	// inputs, Top-1 correctness.
	res, err := fw.Analyze(context.Background(), "resnet", fidelity.FP16, fidelity.StudyOptions{
		Samples:   300,
		Inputs:    3,
		Tolerance: 0.1,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:      %s (%s)\n", res.Workload, res.Precision)
	fmt.Printf("experiments:   %d\n", res.Experiments)
	for id, p := range res.Masked {
		fmt.Printf("  Prob_SWmask[%v] = %s\n", id, p)
	}
	fmt.Printf("Accelerator FIT rate: %.2f\n", res.FIT.Total)
	fmt.Printf("ASIL-D FF budget:     %.2f\n", fidelity.FFBudget())
	if res.FIT.Total > fidelity.FFBudget() {
		fmt.Println("=> the unprotected design does NOT meet ASIL-D (Key Result 1)")
	} else {
		fmt.Println("=> the design meets ASIL-D")
	}
}

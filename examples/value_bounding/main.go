// Value-bounding mitigation (paper Architectural Insights + Key Result 5):
// large perturbations in faulty output neurons cause most application
// errors, so clamping neuron values to a profiled bound in the write-back
// path suppresses exactly the dangerous faults. This example compares the
// datapath/local FIT of the plain ResNet against a variant with clamps
// after every stage.
//
//	go run ./examples/value_bounding
package main

import (
	"context"
	"fmt"
	"log"

	"fidelity"
)

func main() {
	fw, err := fidelity.New(fidelity.NVDLASmall())
	if err != nil {
		log.Fatal(err)
	}
	opts := fidelity.StudyOptions{Samples: 400, Inputs: 3, Tolerance: 0.1, Seed: 31, Workers: 2}

	plain, err := fw.Analyze(context.Background(), "resnet", fidelity.FP16, opts)
	if err != nil {
		log.Fatal(err)
	}
	bounded, err := fw.Analyze(context.Background(), "resnet-bounded", fidelity.FP16, opts)
	if err != nil {
		log.Fatal(err)
	}

	nonGlobal := func(r *fidelity.StudyResult) float64 {
		return r.FIT.Total - r.FIT.ByClass[fidelity.GlobalControlClass]
	}
	fmt.Println("Key Result 5 mitigation: clamp output neurons to a profiled bound")
	fmt.Println()
	fmt.Printf("%-18s datapath+local FIT\n", "network")
	fmt.Printf("%-18s %.3f\n", "resnet", nonGlobal(plain))
	fmt.Printf("%-18s %.3f\n", "resnet-bounded", nonGlobal(bounded))
	if d := nonGlobal(plain) - nonGlobal(bounded); d > 0 {
		fmt.Printf("\nbounding removes %.3f FIT (%.0f%% of the datapath/local risk)\n",
			d, 100*d/nonGlobal(plain))
	} else {
		fmt.Println("\n(no reduction at this sample size — rerun with larger Samples)")
	}
	fmt.Println("\nMechanism: an FP16 exponent-bit flip multiplies a neuron by up to")
	fmt.Println("2^16; the clamp caps the perturbation at the activation bound, where")
	fmt.Println("Key Result 5 says the output-error probability is ~40x lower.")
}

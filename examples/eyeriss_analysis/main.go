// Reuse Factor Analysis on a different dataflow (paper Fig 2b): FIdelity is
// not NVDLA-specific — given the scheduling/reuse description of an
// Eyeriss-like k×k systolic array, Algorithm 1 derives its reuse factors,
// and varying (k, t) performs the sensitivity analysis the paper describes
// for early design exploration.
//
//	go run ./examples/eyeriss_analysis
package main

import (
	"fmt"
	"log"

	"fidelity"
	"fidelity/internal/reuse"
)

func main() {
	fmt.Println("Fig 2(b): Eyeriss-like systolic array, Reuse Factor Analysis")
	fmt.Println()
	fmt.Printf("%-6s %-6s | %-8s %-8s %-8s\n", "k", "t", "b1 (wgt)", "b2 (in)", "b3 (bias)")
	for _, k := range []int{4, 8, 12, 16} {
		for _, t := range []int{4, 7, 16} {
			b1, err := fidelity.AnalyzeReuse(reuse.EyerissTargetB1(k))
			if err != nil {
				log.Fatal(err)
			}
			b2, err := fidelity.AnalyzeReuse(reuse.EyerissTargetB2(k, t))
			if err != nil {
				log.Fatal(err)
			}
			b3, err := fidelity.AnalyzeReuse(reuse.EyerissTargetB3())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-6d | RF=%-5d RF=%-5d RF=%-5d\n", k, t, b1.RF, b2.RF, b3.RF)
		}
	}
	fmt.Println()
	fmt.Println("b1: a weight flip corrupts k consecutive output rows of one column;")
	fmt.Println("b2: an input flip corrupts k rows × t channels (diagonal + temporal reuse);")
	fmt.Println("b3: a bias register feeds one adder — RF = 1.")
	fmt.Println()
	fmt.Println("Sensitivity insight: RF grows linearly with the reuse the dataflow")
	fmt.Println("exploits for energy efficiency — reuse that helps energy hurts the")
	fmt.Println("blast radius of a single-cycle fault.")
}

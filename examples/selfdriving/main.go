// Self-driving scenario (paper Key Result 1): can an unprotected
// NVDLA-class accelerator running the Yolo object detector meet the ISO
// 26262 ASIL-D budget? The paper measures FIT = 9.5 at the 10%-precision
// metric against a 0.2 budget for the accelerator's flip-flops.
//
//	go run ./examples/selfdriving
package main

import (
	"context"
	"fmt"
	"log"

	"fidelity"
)

func main() {
	fw, err := fidelity.New(fidelity.NVDLASmall())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ISO 26262 ASIL-D: chip FIT < 10; accelerator FFs occupy ~2% of")
	fmt.Printf("the chipset area, so their apportioned budget is %.2f FIT.\n\n", fidelity.FFBudget())

	for _, tol := range []float64{0.1, 0.2} {
		res, err := fw.Analyze(context.Background(), "yolo", fidelity.FP16, fidelity.StudyOptions{
			Samples:   400,
			Inputs:    4,
			Tolerance: tol,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "FAILS"
		if res.FIT.Total < fidelity.FFBudget() {
			verdict = "meets"
		}
		fmt.Printf("yolo @ %.0f%% precision tolerance:\n", tol*100)
		fmt.Printf("  FIT = %.2f (datapath %.2f, local %.2f, global %.2f) -> %s ASIL-D\n",
			res.FIT.Total,
			res.FIT.ByClass[fidelity.DatapathClass],
			res.FIT.ByClass[fidelity.LocalControlClass],
			res.FIT.ByClass[fidelity.GlobalControlClass],
			verdict)
		fmt.Printf("  with global control protected: FIT = %.2f\n\n", res.FITProtected.Total)
	}
	fmt.Println("Conclusion: DNN error tolerance alone cannot guarantee the")
	fmt.Println("resilience target; explicit protection is required (Key Results 1-2).")
}

package fidelity

import (
	"context"
	"strings"
	"testing"

	"fidelity/internal/core"
)

func TestPublicAPIFlow(t *testing.T) {
	fw, err := New(NVDLASmall())
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Models) != 7 {
		t.Fatalf("models = %d, want 7 (Table II rows)", len(fw.Models))
	}
	res, err := fw.Analyze(context.Background(), "resnet", FP16, StudyOptions{Samples: 14, Inputs: 2, Tolerance: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FIT.Total <= 0 {
		t.Error("FIT must be positive for an unprotected design")
	}
	if res.FIT.Total < FFBudget() {
		t.Errorf("unprotected FIT %v should exceed the ASIL-D budget %v", res.FIT.Total, FFBudget())
	}
}

func TestPublicTables(t *testing.T) {
	fw, err := New(NVDLASmall())
	if err != nil {
		t.Fatal(err)
	}
	t2 := fw.TableII().String()
	for _, want := range []string{"beforeCBUF/input", "global-control", "37.9%", "16"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q:\n%s", want, t2)
		}
	}
	if !strings.Contains(fw.TableI().String(), "RF = 1") {
		t.Error("Table I missing RF=1 row")
	}
}

func TestPublicReuseAnalysis(t *testing.T) {
	// A broadcast input FF feeding 4 units — RF must be 4 (Fig 2a style).
	units := []UnitID{0, 1, 2, 3}
	in := ReuseInput{
		FFValueCycles:  1,
		Units:          func(l int) []UnitID { return units },
		InEffectCycles: func(m UnitID, l int) int { return 1 },
		Neurons: func(m UnitID, y, l int) []Neuron {
			return []Neuron{{C: int(m)}}
		},
	}
	res, err := AnalyzeReuse(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.RF != 4 {
		t.Errorf("RF = %d, want 4", res.RF)
	}
	cfg := EyerissLike(12, 7)
	if cfg.AtomicK != 12 {
		t.Error("EyerissLike config wrong")
	}
	models, err := DeriveModels(NVDLASmall())
	if err != nil || len(models) != 7 {
		t.Fatalf("DeriveModels: %v, %d", err, len(models))
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 7 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if _, err := BuildWorkload(n, INT8, 1); err != nil {
			t.Errorf("BuildWorkload(%s): %v", n, err)
		}
	}
	if _, err := BuildWorkload("vgg", FP16, 1); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestValidationChartHelpers(t *testing.T) {
	rep := &ValidationReport{Total: 10, DatapathChecked: 3, DatapathExact: 3}
	s := core.ValidationTable(rep).String()
	if !strings.Contains(s, "datapath exact matches") {
		t.Errorf("validation table malformed:\n%s", s)
	}
}

module fidelity

go 1.22
